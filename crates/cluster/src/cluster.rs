//! The sharded [`ResourceService`]: one `Kairos` manager per platform
//! region, parallel admission probes, and cross-shard rebalancing.

use std::collections::BTreeMap;
use std::sync::Arc;

use kairos_admitd::{AdmitPolicy, PriorityClass};
use kairos_app::Application;
use kairos_core::{
    AdmissionProbe, CacheStats, ElementActivity, Kairos, KairosConfig, OccupancySnapshot,
    DURATION_NS_BOUNDS,
};
use kairos_platform::{adjacent_pairs, AppId, ElementId, Platform, RegionMap};
use kairos_svc::{
    CapacityEvent, Command, Event, KairosService, Request, ResourceService, ServiceBuilder, Ticket,
};
use kairos_telemetry::{Counter, Histogram, Level, Telemetry, TraceContext};

use crate::policy::{FirstFit, PlacementPolicy, ShardFit, ShardLoad, ShardProbe};
use crate::pool::{ProbeExecutor, ProbePool};

/// Size of each shard's [`AppId`] namespace: shard `i` mints ids from
/// `i * APP_ID_STRIDE`, so an id alone identifies its home shard and ids
/// stay globally unique across the cluster (shard 0 of a one-shard
/// cluster numbers from 0 — exactly the single-manager behaviour).
pub const APP_ID_STRIDE: u32 = 1 << 24;

/// Shards a load may lag the most-loaded shard by before a
/// [`Command::Rebalance`] sweep moves work across the boundary.
const REBALANCE_GAP: f64 = 0.05;

/// One region shard: its service, its slice of the global element id
/// space, and the translation of its service tickets into the cluster's.
#[derive(Debug)]
struct Shard {
    /// The shard's manager. `None` only *during* a pooled probe wave,
    /// while the manager is lent to the shard's worker thread
    /// ([`ProbePool`]); every fan-out checks it back in before
    /// returning, so the accessors below never observe the gap.
    service: Option<KairosService>,
    /// Local element index → global element id.
    globals: Vec<ElementId>,
    /// Shard-service ticket → cluster ticket. Entries are never removed:
    /// a ticket may be referenced by later events (a requeued victim's
    /// admission).
    tickets: BTreeMap<u64, Ticket>,
}

impl Shard {
    fn svc(&self) -> &KairosService {
        self.service.as_ref().expect("shard manager is checked in")
    }

    fn svc_mut(&mut self) -> &mut KairosService {
        self.service.as_mut().expect("shard manager is checked in")
    }
}

/// Translates one shard's event batch into the cluster's id spaces:
/// tickets through the shard's translation map, element ids from the
/// shard's local space back to the global platform. App ids pass through
/// untouched — they are globally unique by construction (the per-shard
/// [`APP_ID_STRIDE`] namespace). Admission-report layouts stay in
/// shard-local element coordinates; translate them through
/// [`ClusterService::regions`] when needed.
fn translate_events(next: &mut u64, shard: &mut Shard, events: Vec<Event>) -> Vec<Event> {
    let Shard { globals, tickets, .. } = shard;
    // The cluster ticket of a shard-service ticket, minted on first sight
    // (shards mint tickets of their own for preemption requeues; they
    // join the cluster's uniform ticket space here, in event order).
    let mut t = |ticket: Ticket| -> Ticket {
        if let Some(&t) = tickets.get(&ticket.0) {
            return t;
        }
        let minted = Ticket(*next);
        *next += 1;
        tickets.insert(ticket.0, minted);
        minted
    };
    events
        .into_iter()
        .map(|event| match event {
            Event::Queued { ticket, class, depth } => {
                Event::Queued { ticket: t(ticket), class, depth }
            }
            Event::Admitted { ticket, class, app, report, waited, attempts } => {
                Event::Admitted { ticket: t(ticket), class, app, report, waited, attempts }
            }
            Event::AttemptFailed { ticket, class, attempt, phase } => {
                Event::AttemptFailed { ticket: t(ticket), class, attempt, phase }
            }
            Event::Rejected { ticket, class, cause, waited } => {
                Event::Rejected { ticket: t(ticket), class, cause, waited }
            }
            Event::Preempted { victim, class, requeued_as, by } => {
                Event::Preempted { victim, class, by: t(by), requeued_as: t(requeued_as) }
            }
            Event::Migrated { ticket, app, moved_tasks } => {
                Event::Migrated { ticket: t(ticket), app, moved_tasks }
            }
            Event::MigrationFailed { ticket, app, error } => {
                Event::MigrationFailed { ticket: t(ticket), app, error }
            }
            Event::Released { ticket, app, found } => {
                Event::Released { ticket: t(ticket), app, found }
            }
            Event::ElementFailed { ticket, element, evicted } => Event::ElementFailed {
                ticket: t(ticket),
                element: globals[element.index()],
                evicted,
            },
            Event::ElementRepaired { ticket, element } => {
                Event::ElementRepaired { ticket: t(ticket), element: globals[element.index()] }
            }
            Event::Defragged { ticket, moves } => Event::Defragged { ticket: t(ticket), moves },
            Event::Rebalanced { ticket, moves } => Event::Rebalanced { ticket: t(ticket), moves },
        })
        .collect()
}

/// Builds a [`ClusterService`]: the platform, the shard count, and the
/// same policy knobs as [`ServiceBuilder`] — every shard gets an
/// identical configuration (admission queue included), plus the
/// cluster-level [`PlacementPolicy`] deciding which shard each admission
/// is routed to.
///
/// # Examples
///
/// ```
/// use kairos_cluster::{ClusterBuilder, LeastLoaded};
/// use kairos_platform::topology;
///
/// let cluster = ClusterBuilder::new(topology::crisp(), 4)
///     .deterministic(true)
///     .placement(Box::new(LeastLoaded))
///     .build()?;
/// assert_eq!(cluster.shard_count(), 4);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct ClusterBuilder {
    platform: Platform,
    shards: usize,
    config: KairosConfig,
    admission: Option<AdmitPolicy>,
    policy: Box<dyn PlacementPolicy>,
    telemetry: Telemetry,
    executor: ProbeExecutor,
}

impl ClusterBuilder {
    /// A builder for a cluster of `shards` region managers over
    /// `platform`, with the default manager configuration, no admission
    /// queue, [`FirstFit`] placement and telemetry disabled.
    pub fn new(platform: Platform, shards: usize) -> Self {
        ClusterBuilder {
            platform,
            shards,
            config: KairosConfig::default(),
            admission: None,
            policy: Box::new(FirstFit),
            telemetry: Telemetry::disabled(),
            executor: ProbeExecutor::default(),
        }
    }

    /// Selects the probe fan-out executor (default:
    /// [`ProbeExecutor::Pooled`] — one persistent worker thread per
    /// shard). [`ProbeExecutor::Scoped`] restores the legacy per-wave
    /// `std::thread::scope` spawns; both produce byte-identical probe
    /// rows, event streams and metric snapshots (the
    /// `pooled_and_scoped_probe_executors_are_byte_identical` pin).
    pub fn probe_executor(mut self, executor: ProbeExecutor) -> Self {
        self.executor = executor;
        self
    }

    /// Replaces the per-shard manager configuration (each shard's
    /// [`KairosConfig::app_id_base`] is still overridden to its own
    /// [`APP_ID_STRIDE`] slot).
    pub fn config(mut self, config: KairosConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs every shard's pipeline on the zero phase clock, making
    /// cluster output a pure function of its inputs.
    pub fn deterministic(mut self, deterministic: bool) -> Self {
        self.config.deterministic = deterministic;
        self
    }

    /// Fronts every shard manager with a `kairos-admitd` priority queue
    /// under `policy` (class capacities apply per shard).
    pub fn admission(mut self, policy: AdmitPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Injects the shard-placement policy (default: [`FirstFit`]).
    pub fn placement(mut self, policy: Box<dyn PlacementPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches an observability hub to the whole cluster: the
    /// cluster-level `kairos.cluster.*` metrics (probe fan-out latency
    /// per shard, placement-score distributions, rebalance accounting)
    /// land in its registry, and every shard gets a
    /// [`Telemetry::child`] handle labelled `shard{i}` — sharing the
    /// registry, but recording its spans and events into a flight
    /// recorder of its own (each shard is driven by exactly one thread,
    /// so per-shard rings stay deterministically ordered even under the
    /// parallel probe fan-out).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Builds the cluster: partitions the platform into contiguous
    /// capacity-balanced regions ([`RegionMap::new`]) and starts one
    /// [`KairosService`] per region.
    ///
    /// # Errors
    ///
    /// The partitioner's error (zero shards, more shards than elements,
    /// or more shards than [`APP_ID_STRIDE`] namespaces), or the
    /// admission policy's validation error.
    pub fn build(self) -> Result<ClusterService, String> {
        if self.shards > (u32::MAX / APP_ID_STRIDE) as usize {
            return Err(format!("at most {} shards are addressable", u32::MAX / APP_ID_STRIDE));
        }
        let region = RegionMap::new(&self.platform, self.shards)?;
        let mut shards = Vec::with_capacity(region.region_count());
        for r in 0..region.region_count() {
            let config = KairosConfig { app_id_base: r as u32 * APP_ID_STRIDE, ..self.config };
            let mut builder = ServiceBuilder::new(region.extract(&self.platform, r))
                .config(config)
                .telemetry(self.telemetry.child(&format!("shard{r}")));
            if let Some(policy) = self.admission {
                builder = builder.admission(policy);
            }
            shards.push(Shard {
                service: Some(builder.build()?),
                globals: region.elements(r).to_vec(),
                tickets: BTreeMap::new(),
            });
        }
        let metrics = ClusterMetrics::new(&self.telemetry, region.region_count());
        // One-shard clusters probe inline (monolithic byte-identity), so
        // the pool only exists where a fan-out actually happens.
        let pool =
            (self.executor == ProbeExecutor::Pooled && region.region_count() > 1).then(|| {
                ProbePool::new(
                    region.region_count(),
                    &self.telemetry,
                    metrics.as_ref().map(|m| m.probe_ns.as_slice()),
                )
            });
        Ok(ClusterService {
            shards,
            region,
            policy: self.policy,
            next_ticket: 0,
            events: Vec::new(),
            telemetry: self.telemetry,
            metrics,
            pool,
        })
    }
}

/// A fleet of shard managers behind one [`ResourceService`] surface.
///
/// The platform is partitioned into contiguous, capacity-balanced
/// regions; each region is owned by its own [`KairosService`] (direct or
/// queued, exactly as a monolithic service would be). Traffic flows:
///
/// * **Admissions** fan out as parallel what-if probes across all shards
///   (a persistent worker-pool probe executor — one long-lived thread
///   per shard fed through job channels, see [`ProbeExecutor`]; each
///   probe runs in a claim-journal transaction that is always rolled
///   back, so losing probes cost nothing). Probe results are merged in
///   shard-id order and the
///   injected [`PlacementPolicy`] picks the winning shard — making the
///   outcome independent of thread scheduling. The admission is then
///   submitted to that shard's service, queueing semantics and all. When
///   no shard fits, the policy's fallback shard takes the request (to
///   queue or reject it).
/// * **Releases, migrations, faults and repairs** route to the owning
///   shard: app ids encode their home shard ([`APP_ID_STRIDE`]), element
///   ids translate through the [`RegionMap`].
/// * **[`Command::Defrag`]** compacts every shard in shard-id order
///   (`kairos-reloc` migration stays shard-local) and reports one sweep.
/// * **[`Command::Rebalance`]** moves running applications from the
///   most- to the least-loaded shard by evict-and-readmit across the
///   boundary — two-phase (claim the new home, then free the old; any
///   failure rolls the move back) — reporting each move's id change in
///   [`Event::Rebalanced`].
///
/// A one-shard cluster is byte-for-byte the monolithic service: identity
/// partition, identity id maps, probes skipped.
///
/// # Examples
///
/// ```
/// use kairos_cluster::ClusterBuilder;
/// use kairos_svc::{Request, ResourceService, Event};
/// use kairos_admitd::PriorityClass;
/// use kairos_appgen::{AppGenerator, GeneratorConfig};
/// use kairos_platform::topology;
///
/// let mut cluster = ClusterBuilder::new(topology::crisp(), 3).deterministic(true).build()?;
/// let mut generator = AppGenerator::new(GeneratorConfig::default(), 7);
/// let ticket = cluster.submit(Request::admit(0, generator.generate("app"), PriorityClass::Normal));
/// let events = cluster.take_events();
/// assert!(matches!(&events[..], [Event::Admitted { ticket: t, .. }] if *t == ticket));
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct ClusterService {
    shards: Vec<Shard>,
    region: RegionMap,
    policy: Box<dyn PlacementPolicy>,
    /// Next cluster ticket; allocation order is submission order, with
    /// shard-minted tickets (preemption requeues) numbered at the instant
    /// their first event is translated.
    next_ticket: u64,
    /// Events accumulated since the last [`ResourceService::take_events`].
    events: Vec<Event>,
    telemetry: Telemetry,
    metrics: Option<ClusterMetrics>,
    /// The persistent probe workers; `None` on one-shard clusters and
    /// under [`ProbeExecutor::Scoped`].
    pool: Option<ProbePool>,
}

/// Bucket bounds for the placement-score histograms: scores are fractions
/// in `[0, 1]` scaled by `1e6` to integers, so the buckets cut at 10%,
/// 25%, 50%, 75%, 90% and 100%.
pub const SCORE_E6_BOUNDS: &[u64] = &[100_000, 250_000, 500_000, 750_000, 900_000, 1_000_000];

/// Pre-resolved registry handles for the cluster layer, built once at
/// construction. The per-shard probe histograms are recorded from inside
/// the fan-out's probe threads (pool workers or scoped spawns alike);
/// that stays deterministic under the zero clock because every recorded
/// duration is `0` and atomic increments commute, so the snapshot is a
/// pure function of the probe count — independent of thread scheduling,
/// of whether telemetry is lit, and of which [`ProbeExecutor`] ran the
/// wave (the `pooled_and_scoped_probe_executors_are_byte_identical` pin
/// holds all of this in place).
#[derive(Debug, Clone)]
struct ClusterMetrics {
    probe_waves: Arc<Counter>,
    probes: Arc<Counter>,
    /// Per-shard probe latency, indexed by shard id.
    probe_ns: Vec<Arc<Histogram>>,
    /// Fragmentation score of every fitting probe, scaled by `1e6`.
    score_fragmentation: Arc<Histogram>,
    /// Resource-utilisation score of every fitting probe, scaled by `1e6`.
    score_utilisation: Arc<Histogram>,
    placements: Arc<Counter>,
    fallbacks: Arc<Counter>,
    rebalance_sweeps: Arc<Counter>,
    rebalance_moves: Arc<Counter>,
    rebalance_aborts: Arc<Counter>,
}

impl ClusterMetrics {
    fn new(telemetry: &Telemetry, shards: usize) -> Option<Self> {
        let registry = telemetry.registry()?;
        Some(ClusterMetrics {
            probe_waves: registry.counter("kairos.cluster.probe.waves"),
            probes: registry.counter("kairos.cluster.probes"),
            probe_ns: (0..shards)
                .map(|i| {
                    registry
                        .histogram(&format!("kairos.cluster.shard{i}.probe.ns"), DURATION_NS_BOUNDS)
                })
                .collect(),
            score_fragmentation: registry
                .histogram("kairos.cluster.placement.score.fragmentation_e6", SCORE_E6_BOUNDS),
            score_utilisation: registry
                .histogram("kairos.cluster.placement.score.utilisation_e6", SCORE_E6_BOUNDS),
            placements: registry.counter("kairos.cluster.placements"),
            fallbacks: registry.counter("kairos.cluster.placement.fallbacks"),
            rebalance_sweeps: registry.counter("kairos.cluster.rebalance.sweeps"),
            rebalance_moves: registry.counter("kairos.cluster.rebalance.moves"),
            rebalance_aborts: registry.counter("kairos.cluster.rebalance.aborts"),
        })
    }

    /// Folds one shard-id-ordered probe row onto the score histograms.
    fn note_fits(&self, row: &[ShardProbe]) {
        for probe in row {
            if let Some(fit) = &probe.fit {
                self.score_fragmentation.record(score_e6(fit.fragmentation));
                self.score_utilisation.record(score_e6(fit.resource_utilisation));
            }
        }
    }
}

/// A `[0, 1]` score as an integer in parts-per-million (clamped), so the
/// distribution can live in an integer histogram without breaking the
/// byte-stable snapshot rendering.
fn score_e6(score: f64) -> u64 {
    (score.clamp(0.0, 1.0) * 1e6) as u64
}

impl ClusterService {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The region partition the cluster runs on (element id translation
    /// between the global platform and each shard's local space).
    pub fn regions(&self) -> &RegionMap {
        &self.region
    }

    /// Read access to one shard's service, for inspection.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &KairosService {
        self.shards[shard].svc()
    }

    /// The injected placement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The attached observability hub (disabled by default). This is the
    /// cluster-level handle; each shard records through its own
    /// `shard{i}`-labelled child sharing the same registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The shard that minted `app` (ids encode their home shard).
    pub fn shard_of_app(&self, app: AppId) -> usize {
        ((app.0 / APP_ID_STRIDE) as usize).min(self.shards.len() - 1)
    }

    /// Probes every shard with a state-neutral what-if admission of
    /// `app` — in parallel on a multi-shard cluster — and returns the
    /// results merged in shard-id order. Nothing changes anywhere: each
    /// probe runs in a claim-journal transaction its shard always rolls
    /// back.
    pub fn probe_admit(&mut self, app: &Application) -> Vec<ShardProbe> {
        let _span = self.telemetry.span("kairos_cluster", "probe_admit");
        let metrics = &self.metrics;
        let telemetry = &self.telemetry;
        if let Some(m) = metrics {
            m.probe_waves.inc();
            m.probes.add(self.shards.len() as u64);
        }
        let row = if self.shards.len() == 1 {
            let start = telemetry.clock();
            let fit = fit_of(self.shards[0].svc_mut().probe_admit(app).ok());
            if let Some(m) = &self.metrics {
                m.probe_ns[0].record(Telemetry::elapsed_ns(start));
            }
            vec![ShardProbe { shard: 0, fit }]
        } else {
            let per_shard = self.fan_out(&[app]);
            per_shard
                .into_iter()
                .enumerate()
                .map(|(shard, mut fits)| ShardProbe { shard, fit: fits.pop().flatten() })
                .collect()
        };
        if let Some(m) = &self.metrics {
            m.note_fits(&row);
        }
        row
    }

    /// Probes every shard with a state-neutral what-if admission of a
    /// whole arrival wave: one scoped thread per shard probes *all* of
    /// `apps` against its region, so the fan-out cost is one thread per
    /// shard per wave instead of per application. Returns one shard-id-
    /// ordered probe row per application, identical to calling
    /// [`ClusterService::probe_admit`] per app (probes are state-neutral,
    /// so the rows are independent) — this is what batched submission
    /// places its admissions with, and the workload the `cluster_probe`
    /// bench measures against the monolithic sequential baseline.
    pub fn probe_admit_wave(&mut self, apps: &[Application]) -> Vec<Vec<ShardProbe>> {
        let refs: Vec<&Application> = apps.iter().collect();
        self.probe_wave(&refs)
    }

    /// [`Self::probe_admit_wave`] over borrowed applications (what the
    /// batched submission path calls — the wave is still owned by the
    /// requests being placed).
    fn probe_wave(&mut self, apps: &[&Application]) -> Vec<Vec<ShardProbe>> {
        let _span = self.telemetry.span("kairos_cluster", "probe_wave");
        let metrics = &self.metrics;
        let telemetry = &self.telemetry;
        if let Some(m) = metrics {
            m.probe_waves.inc();
            m.probes.add((self.shards.len() * apps.len()) as u64);
        }
        let rows: Vec<Vec<ShardProbe>> = if self.shards.len() == 1 {
            apps.iter()
                .map(|app| {
                    let start = telemetry.clock();
                    let fit = fit_of(self.shards[0].svc_mut().probe_admit(app).ok());
                    if let Some(m) = &self.metrics {
                        m.probe_ns[0].record(Telemetry::elapsed_ns(start));
                    }
                    vec![ShardProbe { shard: 0, fit }]
                })
                .collect()
        } else {
            let per_shard = self.fan_out(apps);
            (0..apps.len())
                .map(|a| {
                    per_shard
                        .iter()
                        .enumerate()
                        .map(|(shard, fits)| ShardProbe { shard, fit: fits[a] })
                        .collect()
                })
                .collect()
        };
        if let Some(m) = &self.metrics {
            for row in &rows {
                m.note_fits(row);
            }
        }
        rows
    }

    /// The multi-shard fan-out behind [`Self::probe_admit`] and
    /// [`Self::probe_wave`]: every shard probes the whole wave, timings
    /// recorded inside the executor's threads, fit rows merged in
    /// shard-id order (outer index = shard). Runs on the persistent
    /// [`ProbePool`] when one exists, or falls back to per-wave scoped
    /// spawns ([`ProbeExecutor::Scoped`]) — the two are byte-identical
    /// in results, events and metric values.
    fn fan_out(&mut self, apps: &[&Application]) -> Vec<Vec<Option<ShardFit>>> {
        if let Some(pool) = &self.pool {
            // Ownership transfer: lend each shard's manager to its
            // persistent worker together with one shared copy of the
            // wave, then take managers and fit rows back in shard-id
            // order.
            let wave: Arc<Vec<Application>> =
                Arc::new(apps.iter().map(|&app| app.clone()).collect());
            for (i, shard) in self.shards.iter_mut().enumerate() {
                let service = shard.service.take().expect("shard manager is checked in");
                pool.submit(i, service, wave.clone());
            }
            self.shards
                .iter_mut()
                .enumerate()
                .map(|(i, shard)| {
                    let (service, fits) = pool.collect(i);
                    shard.service = Some(service);
                    fits
                })
                .collect()
        } else {
            // Legacy executor: one scoped thread per shard per wave. Each
            // thread exclusively owns its shard's manager (`iter_mut`
            // hands out disjoint borrows) and joining in spawn order
            // re-imposes shard-id order on the results.
            let metrics = &self.metrics;
            let telemetry = &self.telemetry;
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .enumerate()
                    .map(|(i, shard)| {
                        let hist = metrics.as_ref().map(|m| m.probe_ns[i].clone());
                        scope.spawn(move || {
                            let service = shard.svc_mut();
                            apps.iter()
                                .map(|app| {
                                    let start = telemetry.clock();
                                    let fit = fit_of(service.probe_admit(app).ok());
                                    if let Some(hist) = &hist {
                                        hist.record(Telemetry::elapsed_ns(start));
                                    }
                                    fit
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("probe thread panicked"))
                    .collect()
            })
        }
    }

    /// Current per-shard loads, in shard-id order.
    pub fn loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardLoad {
                shard,
                resource_utilisation: s.svc().occupancy().resource_utilisation,
                queue_depth: s.svc().queue_depth(),
            })
            .collect()
    }

    fn alloc_ticket(&mut self) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        ticket
    }

    /// Probes, asks the policy, falls back: the shard this admission is
    /// routed to. A set `ctx` gets one coordinator-side `probe.shard{i}`
    /// span per probed shard.
    fn place(&mut self, app: &Application, ctx: TraceContext, at: u64) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let probes = self.probe_admit(app);
        let (shard, fell_back) = match self.policy.choose(&probes) {
            Some(shard) => (shard, false),
            None => (self.policy.fallback(&self.loads()), true),
        };
        if let Some(m) = &self.metrics {
            m.placements.inc();
            if fell_back {
                m.fallbacks.inc();
            }
        }
        self.trace_probes(ctx, at, &probes, shard);
        shard
    }

    /// Records the fan-out's probe spans under `ctx`, one per shard in
    /// shard-id order. Always coordinator-side, after the probe threads
    /// have joined — the threads themselves never touch the trace sink,
    /// so trace ids stay allocation-ordered regardless of scheduling.
    fn trace_probes(&self, ctx: TraceContext, at: u64, probes: &[ShardProbe], chosen: usize) {
        if ctx.is_none() {
            return;
        }
        for probe in probes {
            let fit = if probe.fit.is_some() { "yes" } else { "no" };
            let mut args = vec![("fit", fit.to_owned())];
            if probe.shard == chosen {
                args.push(("chosen", "yes".to_owned()));
            }
            self.telemetry.trace_child(ctx, &format!("probe.shard{}", probe.shard), at, at, &args);
        }
    }

    /// Drains one shard's buffered events into the cluster's, translated.
    fn drain_shard(&mut self, shard: usize) {
        let s = &mut self.shards[shard];
        let events = s.svc_mut().take_events();
        let translated = translate_events(&mut self.next_ticket, s, events);
        self.events.extend(translated);
    }

    /// Submits `request` to `shard` under the cluster ticket `ticket` and
    /// drains the fallout.
    fn forward(&mut self, shard: usize, ticket: Ticket, request: Request) {
        let s = &mut self.shards[shard];
        let shard_ticket = s.svc_mut().submit(request);
        s.tickets.insert(shard_ticket.0, ticket);
        self.drain_shard(shard);
    }

    /// Performs one command under an already-allocated cluster ticket.
    /// For admissions the cluster is the outermost service: it mints the
    /// request's trace root when `trace` is still unset and stamps the
    /// context onto the request it forwards, so the shard continues the
    /// same trace instead of minting its own.
    fn dispatch(&mut self, ticket: Ticket, at: u64, command: Command, trace: TraceContext) {
        match command {
            Command::Admit { app, class } => {
                let ctx = if trace.is_some() {
                    trace
                } else {
                    self.telemetry.trace_root(
                        "request",
                        at,
                        &[("class", class.to_string()), ("origin", "request".to_owned())],
                    )
                };
                let target = self.place(&app, ctx, at);
                self.forward(target, ticket, Request::admit(at, app, class).with_trace(ctx));
            }
            Command::Release { app } => {
                let target = self.shard_of_app(app);
                self.forward(target, ticket, Request::new(at, Command::Release { app }));
            }
            Command::Migrate { app, avoid } => {
                let target = self.shard_of_app(app);
                // Only elements of the owning shard can host the app;
                // avoided elements elsewhere are unreachable anyway.
                let avoid: Vec<ElementId> = avoid
                    .into_iter()
                    .filter(|&e| self.region.region_of(e) == target)
                    .map(|e| self.region.to_local(e))
                    .collect();
                self.forward(target, ticket, Request::new(at, Command::Migrate { app, avoid }));
            }
            Command::InjectFault { element } => {
                let target = self.region.region_of(element);
                let element = self.region.to_local(element);
                self.forward(target, ticket, Request::new(at, Command::InjectFault { element }));
            }
            Command::Repair { element } => {
                let target = self.region.region_of(element);
                let element = self.region.to_local(element);
                self.forward(target, ticket, Request::new(at, Command::Repair { element }));
            }
            Command::Defrag { max_moves } => self.run_defrag(at, ticket, max_moves),
            Command::Rebalance { max_moves } => self.run_rebalance(at, ticket, max_moves),
        }
    }

    /// One cluster-wide defrag sweep: every shard compacts itself (up to
    /// `max_moves` each, in shard-id order), reported as one
    /// [`Event::Defragged`] with the summed move count, followed by
    /// whatever the freed room drained out of the shard queues.
    fn run_defrag(&mut self, at: u64, ticket: Ticket, max_moves: usize) {
        let mut moves = 0;
        let mut tail = Vec::new();
        for i in 0..self.shards.len() {
            let s = &mut self.shards[i];
            let shard_ticket = s.svc_mut().submit(Request::new(at, Command::Defrag { max_moves }));
            s.tickets.insert(shard_ticket.0, ticket);
            let events = s.svc_mut().take_events();
            for event in translate_events(&mut self.next_ticket, s, events) {
                match event {
                    Event::Defragged { moves: m, .. } => moves += m,
                    other => tail.push(other),
                }
            }
        }
        self.events.push(Event::Defragged { ticket, moves });
        self.events.extend(tail);
    }

    /// One cross-shard rebalance sweep (the real implementation behind
    /// [`Command::Rebalance`]).
    ///
    /// Repeatedly pairs the most- with the least-loaded shard (by
    /// resource utilisation; ties break toward the lower id) while their
    /// gap exceeds the rebalance threshold, and moves the first
    /// probe-fitting application across the boundary — evict-and-readmit,
    /// two-phase:
    ///
    /// 1. **make** — the destination shard admits the application
    ///    directly (bypassing its queue: the application already waited
    ///    its wait), minting a fresh id in its own namespace;
    /// 2. **break** — the source shard releases the old claims; the
    ///    freed room is a capacity event, so source-shard waiters drain.
    ///
    /// A failure in phase 1 skips the candidate with nothing to undo; a
    /// failure in phase 2 (the app vanished) rolls phase 1 back by
    /// releasing the fresh claims, so no move is ever half-made.
    fn run_rebalance(&mut self, at: u64, ticket: Ticket, max_moves: usize) {
        let _span = self.telemetry.span("kairos_cluster", "rebalance");
        if let Some(m) = &self.metrics {
            m.rebalance_sweeps.inc();
        }
        let mut moves: Vec<(AppId, AppId)> = Vec::new();
        let mut tail: Vec<Event> = Vec::new();
        'sweep: while moves.len() < max_moves && self.shards.len() > 1 {
            let loads = self.loads();
            let src = loads
                .iter()
                .max_by(|a, b| {
                    a.resource_utilisation.total_cmp(&b.resource_utilisation).then(
                        b.shard.cmp(&a.shard), // ties -> lower id wins the max
                    )
                })
                .expect("at least one shard")
                .shard;
            let dst = loads
                .iter()
                .min_by(|a, b| {
                    a.resource_utilisation.total_cmp(&b.resource_utilisation).then(
                        a.shard.cmp(&b.shard), // ties -> lower id wins the min
                    )
                })
                .expect("at least one shard")
                .shard;
            if src == dst
                || loads[src].resource_utilisation - loads[dst].resource_utilisation < REBALANCE_GAP
            {
                break;
            }
            for id in self.shards[src].svc().kairos().admitted_ids() {
                let app = self.shards[src]
                    .svc()
                    .kairos()
                    .application(id)
                    .expect("admitted ids resolve")
                    .clone();
                let Ok(probe) = self.shards[dst].svc_mut().probe_admit(&app) else {
                    continue;
                };
                // Convergence guard: the move must leave the destination
                // strictly below the source's current load, or the next
                // iteration would just ship work back (ping-pong).
                if probe.after.resource_utilisation + f64::EPSILON
                    >= loads[src].resource_utilisation
                {
                    continue;
                }
                let class = self.shards[src]
                    .svc()
                    .admitd()
                    .and_then(|a| a.admitted_class(id))
                    .unwrap_or(PriorityClass::Normal);
                // Captured before the release erases the layout: the
                // source-side elements the move frees, for cache
                // invalidation once the move is final.
                let src_elements: Vec<ElementId> = self.shards[src]
                    .svc()
                    .kairos()
                    .layout(id)
                    .map(|l| {
                        let mut es: Vec<ElementId> = l.placement.iter().map(|(_, e)| e).collect();
                        es.sort_unstable();
                        es.dedup();
                        es
                    })
                    .unwrap_or_default();
                // Phase 1 (make): claim the new home across the boundary.
                let Ok(report) = self.shards[dst].svc_mut().admit_now(&app, class) else {
                    continue;
                };
                // Phase 2 (break): free the old home, draining waiters.
                let (found, drained) = self.shards[src].svc_mut().release_now(id, at);
                if !found {
                    self.shards[dst].svc_mut().release_now(report.app_id, at);
                    if let Some(m) = &self.metrics {
                        m.rebalance_aborts.inc();
                        self.telemetry.event(
                            Level::WARN,
                            "kairos_cluster",
                            format!(
                                "rebalance move of {id} aborted: source claims vanished, \
                                 {} rolled back on shard {dst}",
                                report.app_id
                            ),
                        );
                    }
                    continue;
                }
                // Cache hygiene on both sides of the boundary: the move
                // changed occupancy on the source's freed elements and
                // the destination's fresh ones, so cached points touching
                // either are superseded.
                self.shards[src].svc_mut().invalidate_cached_points(&src_elements);
                let mut dst_elements: Vec<ElementId> =
                    report.layout.placement.iter().map(|(_, e)| e).collect();
                dst_elements.sort_unstable();
                dst_elements.dedup();
                self.shards[dst].svc_mut().invalidate_cached_points(&dst_elements);
                let s = &mut self.shards[src];
                tail.extend(translate_events(&mut self.next_ticket, s, drained));
                moves.push((id, report.app_id));
                continue 'sweep;
            }
            break; // nothing on the loaded shard fits anywhere lighter
        }
        // Drain fallout first, the sweep summary last: a later iteration
        // may move an application a drain admitted moments earlier, and
        // its `Admitted` must reach the caller before the `Rebalanced`
        // that renames it (the sim's live-app accounting relies on it).
        if let Some(m) = &self.metrics {
            m.rebalance_moves.add(moves.len() as u64);
            self.telemetry.event(
                Level::INFO,
                "kairos_cluster",
                format!("rebalance sweep moved {} application(s)", moves.len()),
            );
        }
        self.events.extend(tail);
        self.events.push(Event::Rebalanced { ticket, moves });
    }
}

pub(crate) fn fit_of(probe: Option<AdmissionProbe>) -> Option<ShardFit> {
    probe.map(|p| ShardFit {
        fragmentation: p.after.external_fragmentation,
        resource_utilisation: p.after.resource_utilisation,
        free_islands: p.after.free_islands,
    })
}

impl ResourceService for ClusterService {
    fn submit(&mut self, request: Request) -> Ticket {
        let Request { at, command, trace } = request;
        let ticket = self.alloc_ticket();
        self.dispatch(ticket, at, command, trace);
        ticket
    }

    fn submit_batch(&mut self, requests: Vec<Request>) -> Vec<Ticket> {
        // Cluster tickets are allocated up front in submission order —
        // batching changes how work is performed, never how it is
        // identified (mirroring the monolithic service).
        let requests: Vec<(Ticket, Request)> =
            requests.into_iter().map(|r| (self.alloc_ticket(), r)).collect();
        let tickets: Vec<Ticket> = requests.iter().map(|(t, _)| *t).collect();

        // Place every admission against the pre-wave state — probes are
        // state-neutral, so the whole wave is probed in one per-shard
        // parallel fan-out ([`Self::probe_admit_wave`]) — group the wave
        // by winning shard, and hand each shard its sub-wave as one
        // batched submission (one platform transaction, one drain pass —
        // per shard). Non-admission commands run after the wave, in
        // submission order, exactly as the monolithic service does.
        let mut admissions: Vec<(Ticket, u64, Application, PriorityClass, TraceContext)> =
            Vec::new();
        let mut rest: Vec<(Ticket, u64, Command, TraceContext)> = Vec::new();
        for (ticket, Request { at, command, trace }) in requests {
            match command {
                Command::Admit { app, class } => {
                    // Roots are minted here, in submission order, so trace
                    // id allocation never depends on where the wave's rows
                    // end up being placed.
                    let ctx = if trace.is_some() {
                        trace
                    } else {
                        self.telemetry.trace_root(
                            "request",
                            at,
                            &[("class", class.to_string()), ("origin", "request".to_owned())],
                        )
                    };
                    admissions.push((ticket, at, app, class, ctx));
                }
                other => rest.push((ticket, at, other, trace)),
            }
        }
        let mut waves: Vec<Vec<(Ticket, Request)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        if self.shards.len() == 1 {
            for (ticket, at, app, class, ctx) in admissions {
                waves[0].push((ticket, Request::admit(at, app, class).with_trace(ctx)));
            }
        } else {
            let apps: Vec<&Application> = admissions.iter().map(|(_, _, app, _, _)| app).collect();
            let probes = self.probe_wave(&apps);
            drop(apps);
            for ((ticket, at, app, class, ctx), row) in admissions.into_iter().zip(probes) {
                let target = match self.policy.choose(&row) {
                    Some(shard) => shard,
                    None => self.policy.fallback(&self.loads()),
                };
                self.trace_probes(ctx, at, &row, target);
                waves[target].push((ticket, Request::admit(at, app, class).with_trace(ctx)));
            }
        }
        for (i, wave) in waves.into_iter().enumerate() {
            if wave.is_empty() {
                continue;
            }
            let (cluster_tickets, shard_requests): (Vec<Ticket>, Vec<Request>) =
                wave.into_iter().unzip();
            let s = &mut self.shards[i];
            let shard_tickets = s.svc_mut().submit_batch(shard_requests);
            for (cluster_ticket, shard_ticket) in cluster_tickets.into_iter().zip(shard_tickets) {
                s.tickets.insert(shard_ticket.0, cluster_ticket);
            }
            self.drain_shard(i);
        }
        for (ticket, at, command, trace) in rest {
            self.dispatch(ticket, at, command, trace);
        }
        tickets
    }

    fn pump(&mut self, event: CapacityEvent) -> Vec<Event> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            let s = &mut self.shards[i];
            let events = s.svc_mut().pump(event);
            out.extend(translate_events(&mut self.next_ticket, s, events));
        }
        out
    }

    fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    fn kairos(&self) -> &Kairos {
        self.shards[0].svc().kairos()
    }

    fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.svc().queue_depth()).sum()
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whole-cluster cache counters: the field-wise sum over every shard
    /// manager's operating-point cache ([`CacheStats::merge`]); `None`
    /// when no shard has a cache (all shards share one configuration, so
    /// it is all or none).
    fn cache_stats(&self) -> Option<CacheStats> {
        self.shards.iter().filter_map(|s| s.svc().cache_stats()).reduce(CacheStats::merge)
    }

    /// Whole-cluster occupancy, aggregated exactly: utilisations from the
    /// summed counts, fragmentation over the union of all intra-shard
    /// adjacent pairs (cross-shard pairs are invisible to the shard
    /// managers and excluded — a one-shard cluster therefore matches the
    /// monolithic snapshot bit for bit), islands and failures summed.
    fn occupancy(&self) -> OccupancySnapshot {
        let mut admitted_apps = 0;
        let mut used = 0usize;
        let mut elements = 0usize;
        let (mut free, mut capacity) = (0u64, 0u64);
        let (mut mixed, mut pairs) = (0usize, 0usize);
        let mut free_islands = 0;
        let mut failed_elements = 0;
        for s in &self.shards {
            let kairos = s.svc().kairos();
            let p = kairos.platform();
            admitted_apps += kairos.admitted_count();
            used += p.element_ids().filter(|&e| p.is_used(e)).count();
            elements += p.element_count();
            free += p.total_free().as_array().iter().sum::<u64>();
            capacity += p.total_capacity().as_array().iter().sum::<u64>();
            let shard_pairs = adjacent_pairs(p);
            mixed += shard_pairs.iter().filter(|&&(a, b)| p.is_used(a) != p.is_used(b)).count();
            pairs += shard_pairs.len();
            free_islands += kairos_platform::free_island_count(p);
            failed_elements += p.failed_elements().len();
        }
        OccupancySnapshot {
            admitted_apps,
            element_utilisation: if elements == 0 { 0.0 } else { used as f64 / elements as f64 },
            resource_utilisation: if capacity == 0 {
                0.0
            } else {
                1.0 - free as f64 / capacity as f64
            },
            external_fragmentation: if pairs == 0 { 0.0 } else { mixed as f64 / pairs as f64 },
            free_islands,
            failed_elements,
        }
    }

    /// Per-element activity over every shard, with shard-local element ids
    /// translated back to the global platform through each shard's region
    /// slice and each entry tagged with its owning shard — ordered by shard
    /// then local id, which for contiguous region slices is global-id
    /// order (matching the monolithic service on a one-shard cluster).
    fn element_activity(&self) -> Vec<ElementActivity> {
        let mut out = Vec::new();
        for (shard_index, s) in self.shards.iter().enumerate() {
            for mut activity in s.svc().kairos().element_activity() {
                activity.element = s.globals[activity.element.index()];
                activity.shard = shard_index;
                out.push(activity);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestFitFragmentation, LeastLoaded};
    use kairos_app::{ApplicationBuilder, Implementation, TaskRole};
    use kairos_platform::{topology, ElementKind, ResourceVector};

    fn chain(name: &str, tasks: usize, cpu: u64) -> Application {
        let imp = Implementation::new(ElementKind::Dsp, ResourceVector::new(cpu, 8, 0, 0), 50, 1);
        let mut b = ApplicationBuilder::new(name);
        let mut prev = None;
        for i in 0..tasks {
            let t = b.add_task(format!("t{i}"), TaskRole::Internal, vec![imp]);
            if let Some(p) = prev {
                b.add_channel(p, t, 10, 1);
            }
            prev = Some(t);
        }
        b.build().unwrap()
    }

    fn cluster(shards: usize) -> ClusterService {
        ClusterBuilder::new(topology::crisp(), shards).deterministic(true).build().unwrap()
    }

    #[test]
    fn builder_rejects_degenerate_shard_counts() {
        assert!(ClusterBuilder::new(topology::crisp(), 0).build().is_err());
        assert!(ClusterBuilder::new(topology::dsp_line(3), 4).build().is_err());
        assert!(ClusterBuilder::new(topology::crisp(), 1_000_000).build().is_err());
    }

    #[test]
    fn one_shard_cluster_reproduces_the_monolithic_event_stream() {
        let mut mono = ServiceBuilder::new(topology::crisp()).deterministic(true).build().unwrap();
        let mut one = cluster(1);
        let traffic: Vec<Request> = vec![
            Request::admit(0, chain("a", 3, 700), PriorityClass::Normal),
            Request::admit(1, chain("b", 2, 500), PriorityClass::Critical),
            Request::admit(2, chain("hopeless", 70, 990), PriorityClass::Low),
            Request::new(3, Command::InjectFault { element: ElementId(5) }),
            Request::new(4, Command::Repair { element: ElementId(5) }),
            Request::new(5, Command::Defrag { max_moves: 4 }),
            Request::new(6, Command::Rebalance { max_moves: 4 }),
        ];
        let mono_tickets: Vec<Ticket> = traffic.iter().cloned().map(|r| mono.submit(r)).collect();
        let one_tickets: Vec<Ticket> = traffic.into_iter().map(|r| one.submit(r)).collect();
        assert_eq!(mono_tickets, one_tickets);
        let (a, b) = (mono.take_events(), one.take_events());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "event streams must match byte-for-byte");
        assert_eq!(mono.occupancy(), one.occupancy());
        assert_eq!(mono.queue_depth(), one.queue_depth());
    }

    #[test]
    fn one_shard_batches_match_the_monolithic_batch_path() {
        let mut mono = ServiceBuilder::new(topology::crisp()).deterministic(true).build().unwrap();
        let mut one = cluster(1);
        let wave = |i: u64| -> Vec<Request> {
            vec![
                Request::admit(i, chain("w0", 2, 600), PriorityClass::Low),
                Request::admit(i, chain("w1", 1, 400), PriorityClass::Critical),
                Request::admit(i, chain("w2", 2, 500), PriorityClass::Normal),
            ]
        };
        assert_eq!(mono.submit_batch(wave(0)), one.submit_batch(wave(0)));
        let (a, b) = (mono.take_events(), one.take_events());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(
            mono.kairos().platform().txn_count(),
            one.shard(0).kairos().platform().txn_count(),
            "one batch transaction either way"
        );
    }

    /// Satellite pin: the persistent worker-pool probe executor and the
    /// legacy per-wave scoped fan-out are byte-identical — tickets,
    /// event streams, occupancy, and (lit) the rendered metric snapshot,
    /// including the per-shard probe-timing histograms, whose recording
    /// is commutative and therefore independent of executor scheduling.
    #[test]
    fn pooled_and_scoped_probe_executors_are_byte_identical() {
        let traffic = || -> Vec<Request> {
            let mut t: Vec<Request> = (0..8)
                .map(|i| Request::admit(i, chain(&format!("p{i}"), 2, 600), PriorityClass::Normal))
                .collect();
            t.push(Request::new(8, Command::Rebalance { max_moves: 2 }));
            t
        };
        let batch: Vec<Request> = (0..4)
            .map(|i| Request::admit(9, chain(&format!("b{i}"), 1, 400), PriorityClass::Low))
            .collect();
        for lit in [false, true] {
            let build = |executor: ProbeExecutor| {
                let telemetry = if lit {
                    Telemetry::new(kairos_telemetry::TelemetryConfig::default())
                } else {
                    Telemetry::disabled()
                };
                ClusterBuilder::new(topology::crisp(), 3)
                    .deterministic(true)
                    .telemetry(telemetry)
                    .probe_executor(executor)
                    .build()
                    .unwrap()
            };
            let mut pooled = build(ProbeExecutor::Pooled);
            let mut scoped = build(ProbeExecutor::Scoped);
            let pooled_tickets: Vec<Ticket> =
                traffic().into_iter().map(|r| pooled.submit(r)).collect();
            let scoped_tickets: Vec<Ticket> =
                traffic().into_iter().map(|r| scoped.submit(r)).collect();
            assert_eq!(pooled_tickets, scoped_tickets);
            assert_eq!(pooled.submit_batch(batch.clone()), scoped.submit_batch(batch.clone()));
            let (a, b) = (pooled.take_events(), scoped.take_events());
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "lit={lit}: event streams diverged");
            assert_eq!(pooled.occupancy(), scoped.occupancy());
            assert_eq!(pooled.queue_depth(), scoped.queue_depth());
            if lit {
                assert_eq!(
                    pooled.telemetry().render_text(),
                    scoped.telemetry().render_text(),
                    "metric snapshots (probe histograms included) must match byte-for-byte"
                );
            }
        }
    }

    #[test]
    fn app_ids_encode_their_home_shard_and_releases_route_back() {
        let mut cluster = ClusterBuilder::new(topology::crisp(), 3)
            .deterministic(true)
            .placement(Box::new(LeastLoaded))
            .build()
            .unwrap();
        let mut homes = Vec::new();
        for i in 0..6 {
            cluster.submit(Request::admit(
                i,
                chain(&format!("a{i}"), 2, 600),
                PriorityClass::Normal,
            ));
        }
        for event in cluster.take_events() {
            let Event::Admitted { report, .. } = event else {
                panic!("uncontended admissions admit: {event:?}")
            };
            let home = cluster.shard_of_app(report.app_id);
            assert!(
                cluster.shard(home).kairos().admitted_ids().contains(&report.app_id),
                "the id's encoded shard actually owns it"
            );
            homes.push((report.app_id, home));
        }
        assert!(
            homes.iter().map(|&(_, h)| h).collect::<std::collections::BTreeSet<_>>().len() > 1,
            "least-loaded placement spreads the apps: {homes:?}"
        );
        // Releases route home: every shard drains back to idle.
        for (i, &(id, _)) in homes.iter().enumerate() {
            cluster.submit(Request::release(10 + i as u64, id));
        }
        let releases = cluster.take_events();
        assert!(releases.iter().all(|e| matches!(e, Event::Released { found: true, .. })));
        for s in 0..cluster.shard_count() {
            assert!(cluster.shard(s).kairos().platform().is_idle(), "shard {s} leaked claims");
        }
    }

    #[test]
    fn faults_translate_between_global_and_shard_local_element_ids() {
        let mut cluster = cluster(4);
        // Fill broadly so some shard hosts work on the target element.
        for i in 0..10 {
            cluster.submit(Request::admit(
                i,
                chain(&format!("f{i}"), 2, 600),
                PriorityClass::Normal,
            ));
        }
        let admitted = cluster.take_events().len();
        assert!(admitted > 0);
        // Pick a used global element from some shard's residents.
        let (global, victim_shard) = (0..cluster.shard_count())
            .find_map(|s| {
                let p = cluster.shard(s).kairos().platform();
                p.element_ids()
                    .find(|&e| p.is_used(e))
                    .map(|local| (cluster.regions().to_global(s, local), s))
            })
            .expect("something was admitted somewhere");
        let before = cluster.shard(victim_shard).kairos().admitted_count();
        cluster.submit(Request::new(20, Command::InjectFault { element: global }));
        let events = cluster.take_events();
        let Some(Event::ElementFailed { element, evicted, .. }) =
            events.iter().find(|e| matches!(e, Event::ElementFailed { .. }))
        else {
            panic!("fault must report: {events:?}")
        };
        assert_eq!(*element, global, "the event reports the global id back");
        assert!(!evicted.is_empty(), "the used element evicts its apps");
        assert!(evicted.iter().all(|&id| cluster.shard_of_app(id) == victim_shard));
        assert_eq!(cluster.shard(victim_shard).kairos().admitted_count(), before - evicted.len());
        cluster.submit(Request::new(21, Command::Repair { element: global }));
        let events = cluster.take_events();
        assert!(matches!(
            events.as_slice(),
            [Event::ElementRepaired { element, .. }] if *element == global
        ));
        assert_eq!(cluster.occupancy().failed_elements, 0);
    }

    #[test]
    fn parallel_probes_are_deterministic_and_state_neutral() {
        let mut cluster = ClusterBuilder::new(topology::crisp(), 4)
            .deterministic(true)
            .placement(Box::new(BestFitFragmentation))
            .build()
            .unwrap();
        for i in 0..5 {
            cluster.submit(Request::admit(
                i,
                chain(&format!("r{i}"), 2, 700),
                PriorityClass::Normal,
            ));
        }
        cluster.take_events();
        let app = chain("probe", 3, 600);
        let checkpoints: Vec<_> = (0..cluster.shard_count())
            .map(|s| cluster.shard(s).kairos().platform().checkpoint())
            .collect();
        let first = cluster.probe_admit(&app);
        for _ in 0..10 {
            assert_eq!(cluster.probe_admit(&app), first, "probe results replay identically");
        }
        assert!(first.iter().enumerate().all(|(i, p)| p.shard == i), "shard-id order");
        for (s, checkpoint) in checkpoints.into_iter().enumerate() {
            assert_eq!(
                cluster.shard(s).kairos().platform().checkpoint(),
                checkpoint,
                "probing left shard {s} untouched"
            );
        }
        assert!(cluster.take_events().is_empty(), "probes emit nothing");
    }

    #[test]
    fn rebalance_moves_work_from_loaded_to_idle_shards() {
        // FirstFit concentrates everything on shard 0; the sweep then
        // spreads it across the boundary.
        let mut cluster =
            ClusterBuilder::new(topology::dsp_mesh(4, 2), 2).deterministic(true).build().unwrap();
        for i in 0..3 {
            cluster.submit(Request::admit(
                i,
                chain(&format!("m{i}"), 1, 600),
                PriorityClass::Normal,
            ));
        }
        let admitted = cluster.take_events().len();
        assert_eq!(admitted, 3);
        assert_eq!(cluster.shard(0).kairos().admitted_count(), 3, "first-fit piles on shard 0");
        assert_eq!(cluster.shard(1).kairos().admitted_count(), 0);

        let ticket = cluster.submit(Request::new(10, Command::Rebalance { max_moves: 8 }));
        let events = cluster.take_events();
        let Some(Event::Rebalanced { ticket: t, moves }) =
            events.iter().find(|e| matches!(e, Event::Rebalanced { .. }))
        else {
            panic!("rebalance must report: {events:?}")
        };
        assert_eq!(*t, ticket);
        assert!(!moves.is_empty(), "the imbalance must trigger moves");
        for &(from, to) in moves {
            assert_eq!(cluster.shard_of_app(from), 0);
            assert_eq!(cluster.shard_of_app(to), 1, "moves cross the boundary");
            assert!(cluster.shard(1).kairos().admitted_ids().contains(&to));
            assert!(!cluster.shard(0).kairos().admitted_ids().contains(&from));
        }
        assert_eq!(cluster.shard_count_admitted(), 3, "rebalance moves apps, it never loses them");
        let loads = cluster.loads();
        assert!(
            (loads[0].resource_utilisation - loads[1].resource_utilisation).abs()
                < REBALANCE_GAP + 0.35,
            "the sweep narrows the gap: {loads:?}"
        );
        // A balanced cluster's follow-up sweep is a no-op.
        cluster.submit(Request::new(11, Command::Rebalance { max_moves: 8 }));
        let events = cluster.take_events();
        assert!(matches!(
            events.as_slice(),
            [Event::Rebalanced { moves, .. }] if moves.is_empty()
        ));
        // Ledger balance: releasing everything restores both shards.
        for s in 0..2 {
            for id in cluster.shard(s).kairos().admitted_ids() {
                cluster.submit(Request::release(20, id));
            }
        }
        cluster.take_events();
        for s in 0..2 {
            assert!(cluster.shard(s).kairos().platform().is_idle(), "shard {s} leaked claims");
        }
    }

    #[test]
    fn queued_cluster_rebalance_keeps_the_victim_registry_whole() {
        let policy =
            AdmitPolicy { class_capacity: [8, 8, 8, 8], max_wait: None, ..AdmitPolicy::default() };
        let mut cluster = ClusterBuilder::new(topology::dsp_mesh(4, 2), 2)
            .deterministic(true)
            .admission(policy)
            .build()
            .unwrap();
        for i in 0..3 {
            cluster.submit(Request::admit(i, chain(&format!("q{i}"), 1, 600), PriorityClass::Low));
        }
        cluster.take_events();
        cluster.submit(Request::new(5, Command::Rebalance { max_moves: 4 }));
        let events = cluster.take_events();
        let Some(Event::Rebalanced { moves, .. }) =
            events.iter().find(|e| matches!(e, Event::Rebalanced { .. }))
        else {
            panic!("rebalance must report: {events:?}")
        };
        assert!(!moves.is_empty());
        // The moved app keeps its admission class on its new shard.
        for &(_, to) in moves {
            let home = cluster.shard_of_app(to);
            assert_eq!(
                cluster.shard(home).admitd().unwrap().admitted_class(to),
                Some(PriorityClass::Low),
                "the import registered in the destination victim registry"
            );
        }
    }

    /// Regression test for the rebalance event order: a sweep's source
    /// releases drain source-shard waiters, and a later iteration may
    /// move an application a drain admitted moments earlier — so every
    /// drain `Admitted` must be emitted *before* the `Rebalanced` that
    /// may rename its application. A driver folding the stream in order
    /// (the sim engine's live-app accounting) would otherwise see a move
    /// of an application it has never heard of.
    #[test]
    fn rebalance_emits_drain_admissions_before_the_sweep_summary() {
        let policy =
            AdmitPolicy { class_capacity: [4, 4, 4, 4], max_wait: None, ..AdmitPolicy::default() };
        let mut cluster = ClusterBuilder::new(topology::dsp_mesh(8, 2), 2)
            .deterministic(true)
            .admission(policy)
            .build()
            .unwrap();
        // Fill both shards completely, then queue a waiter that fits
        // nowhere (it lands on the fallback shard 0), then empty most of
        // shard 1 so the sweep pulls work across the boundary.
        for i in 0..8 {
            cluster.submit(Request::admit(i, chain(&format!("f{i}"), 2, 990), PriorityClass::Low));
        }
        let waiter =
            cluster.submit(Request::admit(8, chain("waiter", 1, 500), PriorityClass::Normal));
        let setup = cluster.take_events();
        assert!(
            setup.iter().any(|e| matches!(e, Event::Queued { ticket, .. } if *ticket == waiter)),
            "the waiter must queue: {setup:?}"
        );
        let shard1_apps = cluster.shard(1).kairos().admitted_ids();
        for id in shard1_apps.iter().take(3) {
            cluster.submit(Request::release(9, *id));
        }
        cluster.take_events();

        cluster.submit(Request::new(10, Command::Rebalance { max_moves: 8 }));
        let events = cluster.take_events();
        let rebalance_at = events
            .iter()
            .position(|e| matches!(e, Event::Rebalanced { .. }))
            .expect("the sweep reports");
        assert_eq!(rebalance_at, events.len() - 1, "sweep summary comes last: {events:?}");
        let Event::Rebalanced { moves, .. } = &events[rebalance_at] else { unreachable!() };
        assert!(!moves.is_empty(), "the skew must trigger moves: {events:?}");
        // The first cross-shard release freed room for the waiter.
        let drained = events
            .iter()
            .position(|e| matches!(e, Event::Admitted { ticket, .. } if *ticket == waiter));
        assert!(drained.is_some_and(|i| i < rebalance_at), "drain precedes summary: {events:?}");
        // An in-order fold (the sim's) only ever sees moves of known apps.
        let mut live: Vec<AppId> = Vec::new();
        for s in 0..2 {
            live.extend(cluster.shard(s).kairos().admitted_ids());
        }
        let mut known: Vec<AppId> = setup
            .iter()
            .filter_map(|e| match e {
                Event::Admitted { report, .. } => Some(report.app_id),
                _ => None,
            })
            .collect();
        for event in &events {
            match event {
                Event::Admitted { report, .. } => known.push(report.app_id),
                Event::Rebalanced { moves, .. } => {
                    for &(from, to) in moves {
                        assert!(known.contains(&from), "move of an unknown app {from}");
                        known.retain(|&id| id != from);
                        known.push(to);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn cluster_occupancy_aggregates_across_shards() {
        let mut cluster = cluster(3);
        assert_eq!(cluster.occupancy().admitted_apps, 0);
        assert_eq!(cluster.occupancy().free_islands, 3, "each shard is one idle island");
        for i in 0..4 {
            cluster.submit(Request::admit(
                i,
                chain(&format!("o{i}"), 2, 600),
                PriorityClass::Normal,
            ));
        }
        cluster.take_events();
        let occ = cluster.occupancy();
        assert_eq!(occ.admitted_apps, 4);
        assert!(occ.element_utilisation > 0.0 && occ.element_utilisation < 1.0);
        assert!(occ.resource_utilisation > 0.0);
        assert_eq!(cluster.shard_count_admitted(), 4);
    }
}
