//! The persistent worker-pool probe executor.
//!
//! Earlier revisions spawned one scoped OS thread per shard for *every*
//! probe fan-out (`std::thread::scope`), paying thread creation and
//! teardown on each arrival. The pool keeps one long-lived worker per
//! shard instead: a probe wave **lends** each shard's manager to its
//! worker through a job channel (plain ownership transfer — no locks, no
//! shared mutable state, which also keeps the cluster's `&`-returning
//! accessors sound: the manager is always checked back in before any
//! other method runs), the worker probes the whole wave against its
//! region, and the coordinator takes the manager back together with the
//! fit row — receiving **in shard-id order**, so thread scheduling can
//! never leak into a placement decision.
//!
//! Per-shard probe-timing histograms are recorded inside the workers,
//! exactly as the scoped fan-out recorded them inside its threads; that
//! stays byte-deterministic because histogram recording is commutative
//! (see the cluster metrics docs) and under the deterministic zero clock
//! every recorded duration is `0`.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use kairos_app::Application;
use kairos_svc::KairosService;
use kairos_telemetry::{Histogram, Telemetry};

use crate::cluster::fit_of;
use crate::policy::ShardFit;

/// How a [`ClusterService`](crate::ClusterService) fans admission probes
/// out across its shards (multi-shard clusters only; a one-shard cluster
/// probes inline either way, preserving monolithic byte-identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeExecutor {
    /// One long-lived worker thread per shard, fed whole waves through
    /// job channels (the default).
    #[default]
    Pooled,
    /// One fresh scoped thread per shard per wave — the legacy
    /// `std::thread::scope` fan-out, kept for the pooled-vs-scoped
    /// equivalence pin and the `gateway` bench comparison.
    Scoped,
}

/// One wave of work for a worker: the shard's manager (lent for the
/// duration of the wave) and the applications to probe.
type Job = (KairosService, Arc<Vec<Application>>);

/// What comes back: the manager, plus one fit per wave application.
type Done = (KairosService, Vec<Option<ShardFit>>);

struct Worker {
    /// `None` only while the pool is shutting down (dropping the sender
    /// ends the worker's receive loop).
    jobs: Option<Sender<Job>>,
    done: Receiver<Done>,
    handle: Option<JoinHandle<()>>,
}

/// One long-lived probe worker per shard. Dropping the pool drops the
/// job channels and joins every worker, so no thread outlives the
/// cluster that spawned it.
pub(crate) struct ProbePool {
    workers: Vec<Worker>,
}

impl std::fmt::Debug for ProbePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbePool").field("workers", &self.workers.len()).finish()
    }
}

impl ProbePool {
    /// Spawns one worker per shard. Each worker holds its shard's
    /// probe-latency histogram handle (when telemetry is lit) and a clone
    /// of the telemetry hub for its clock, so timings are recorded where
    /// the work happens.
    pub(crate) fn new(
        shards: usize,
        telemetry: &Telemetry,
        probe_ns: Option<&[Arc<Histogram>]>,
    ) -> Self {
        let workers = (0..shards)
            .map(|i| {
                let (jobs, job_rx) = channel::<Job>();
                let (done_tx, done) = channel::<Done>();
                let hist = probe_ns.map(|h| h[i].clone());
                let telemetry = telemetry.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("kairos-probe-{i}"))
                    .spawn(move || {
                        while let Ok((mut service, apps)) = job_rx.recv() {
                            let fits: Vec<Option<ShardFit>> = apps
                                .iter()
                                .map(|app| {
                                    let start = telemetry.clock();
                                    let fit = fit_of(service.probe_admit(app).ok());
                                    if let Some(hist) = &hist {
                                        hist.record(Telemetry::elapsed_ns(start));
                                    }
                                    fit
                                })
                                .collect();
                            if done_tx.send((service, fits)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn probe worker");
                Worker { jobs: Some(jobs), done, handle: Some(handle) }
            })
            .collect();
        ProbePool { workers }
    }

    /// Lends `service` to worker `shard` for one pass over `apps`.
    pub(crate) fn submit(&self, shard: usize, service: KairosService, apps: Arc<Vec<Application>>) {
        self.workers[shard]
            .jobs
            .as_ref()
            .expect("pool is alive")
            .send((service, apps))
            .expect("probe worker died");
    }

    /// Takes worker `shard`'s manager back together with its fit row.
    /// Collecting in shard-id order re-imposes determinism on the merged
    /// results regardless of which worker finished first.
    pub(crate) fn collect(&self, shard: usize) -> (KairosService, Vec<Option<ShardFit>>) {
        self.workers[shard].done.recv().expect("probe worker died")
    }
}

impl Drop for ProbePool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            worker.jobs.take(); // hang up: ends the worker's receive loop
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}
