//! # kairos-cluster
//!
//! Sharded platform regions with parallel admission probes behind the
//! [`ResourceService`](kairos_svc::ResourceService) surface — the first
//! step from one resource manager to a fleet of them.
//!
//! The paper manages one flat spatial resource pool; every deployment of
//! such a manager at scale partitions the fabric into regions managed
//! semi-independently so run-time decisions stay local and fast. This
//! crate does exactly that on top of the existing stack:
//!
//! * **Partitioning** — [`kairos_platform::RegionMap`] splits the
//!   platform into N disjoint *contiguous* element groups balanced by
//!   resource capacity; each region becomes a standalone platform owned
//!   by its own [`Kairos`](kairos_svc::Kairos) manager (queued behind
//!   `kairos-admitd` when an admission policy is set — identical knobs to
//!   the monolithic [`ServiceBuilder`](kairos_svc::ServiceBuilder)).
//! * **Parallel admission probes** — every admission fans out as
//!   state-neutral what-if probes across all shards on a persistent
//!   worker-pool probe executor: one long-lived thread per shard, fed
//!   whole waves through job channels (no executor crate, no extra
//!   dependencies; each probe is a claim-journal transaction its shard
//!   always rolls back, and [`ProbeExecutor::Scoped`] keeps the legacy
//!   per-wave `std::thread::scope` fan-out selectable for comparison).
//!   Results are merged **in shard-id order**, so thread scheduling can
//!   never leak into a decision: cluster output is byte-deterministic.
//! * **Pluggable placement** — a [`PlacementPolicy`] trait object picks
//!   the winning shard from the merged probes: [`FirstFit`],
//!   [`BestFitFragmentation`] (lowest post-admission §III-A
//!   fragmentation) or [`LeastLoaded`], with a fallback route for
//!   requests no shard can admit right now.
//! * **One service surface** — [`ClusterService`] implements
//!   [`ResourceService`](kairos_svc::ResourceService), so every existing
//!   driver — the `kairos-sim` scenario engine included — runs unchanged
//!   over a fleet of managers. Tickets, app ids ([`APP_ID_STRIDE`]
//!   namespaces) and element ids all translate into one uniform global
//!   id space; a one-shard cluster reproduces the monolithic service
//!   byte for byte.
//! * **Cross-shard rebalancing** —
//!   [`Command::Rebalance`](kairos_svc::Command::Rebalance) pairs the
//!   most- with the least-loaded shard and moves running applications
//!   across the boundary by two-phase evict-and-readmit (claim the new
//!   home, then free the old; rollback on any failure), while
//!   [`Command::Defrag`](kairos_svc::Command::Defrag) keeps using
//!   `kairos-reloc` live migration *within* each shard.
//!
//! ## Example
//!
//! ```
//! use kairos_cluster::{ClusterBuilder, BestFitFragmentation};
//! use kairos_svc::{Request, ResourceService};
//! use kairos_admitd::PriorityClass;
//! use kairos_appgen::{AppGenerator, GeneratorConfig};
//! use kairos_platform::topology;
//!
//! let mut cluster = ClusterBuilder::new(topology::crisp(), 4)
//!     .deterministic(true)
//!     .placement(Box::new(BestFitFragmentation))
//!     .build()?;
//! let mut generator = AppGenerator::new(GeneratorConfig::default(), 7);
//! for i in 0..8 {
//!     cluster.submit(Request::admit(i, generator.generate(format!("app-{i}")), PriorityClass::Normal));
//! }
//! let admitted = cluster.take_events().len();
//! assert!(admitted > 0);
//! assert_eq!(cluster.occupancy().admitted_apps, cluster.shard_count_admitted());
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cluster;
mod policy;
mod pool;

pub use cluster::{ClusterBuilder, ClusterService, APP_ID_STRIDE, SCORE_E6_BOUNDS};
pub use policy::{
    BestFitFragmentation, FirstFit, LeastLoaded, PlacementPolicy, PlacementPolicyKind, ShardFit,
    ShardLoad, ShardProbe,
};
pub use pool::ProbeExecutor;

impl ClusterService {
    /// Sum of admitted applications over all shards (convenience for the
    /// crate example; equals `occupancy().admitted_apps`).
    pub fn shard_count_admitted(&self) -> usize {
        use kairos_svc::ResourceService as _;
        (0..self.shard_count()).map(|s| self.shard(s).kairos().admitted_count()).sum()
    }
}

// Compile-time thread-safety pins. Sharding lends whole manager stacks
// to the persistent probe workers (or scoped probe threads) and shares
// the probed wave between them; if any layer (platform, manager,
// service, injected policy objects) silently stopped being `Send`/
// `Sync`, parallel probing would regress. Fail the build here instead.
const fn _assert_send<T: Send>() {}
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<kairos_platform::Platform>();
const _: () = _assert_send_sync::<kairos_svc::Kairos>();
const _: () = _assert_send_sync::<kairos_app::Application>();
const _: () = _assert_send::<kairos_svc::KairosService>();
const _: () = _assert_send::<ClusterService>();
const _: () = _assert_send_sync::<Box<dyn PlacementPolicy>>();
const _: () = _assert_send_sync::<PlacementPolicyKind>();
