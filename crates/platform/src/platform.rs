//! The platform graph `P = <E, L>` with its mutable resource ledger.
//!
//! A [`Platform`] separates immutable *structure* (elements, links, adjacency)
//! from mutable *state* (free resources, residing tasks, link occupancy,
//! failed elements). The state can be checkpointed and restored in O(|E|+|L|),
//! which is how the resource manager rolls back a failed allocation attempt
//! midway through the binding/mapping/routing/validation pipeline.

use std::fmt;

use kairos_telemetry::Counter;
use serde::{Deserialize, Serialize};

use crate::element::{Element, ElementId, ElementKind};
use crate::link::{Link, LinkId, LinkState};
use crate::resource::ResourceVector;

/// Identifier of an admitted application instance.
///
/// Assigned by the resource manager at admission; the platform only uses it
/// to distinguish "task of the same application" from "task of another
/// application" in occupancy queries (the fragmentation bonus of the mapping
/// cost function needs exactly this distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u32);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// A task residing on an element: which application it belongs to and the
/// task's index within that application's task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Occupant {
    /// Owning application instance.
    pub app: AppId,
    /// Task index within the owning application.
    pub task: u32,
    /// Resources this occupant claimed, needed for release.
    pub claimed: ResourceVector,
}

/// Errors raised by resource claims on the platform ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimError {
    /// The element does not provide enough free resources.
    InsufficientResources {
        /// Element on which the claim was attempted.
        element: ElementId,
        /// The requested vector.
        requested: ResourceVector,
        /// The free vector at the time of the claim.
        free: ResourceVector,
    },
    /// The element is marked as failed (fault injection / wear-out).
    ElementFailed(ElementId),
    /// The link has no free virtual channel or not enough bandwidth.
    LinkSaturated {
        /// Link on which the claim was attempted.
        link: LinkId,
        /// Requested bandwidth.
        requested: u64,
    },
}

impl fmt::Display for ClaimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaimError::InsufficientResources { element, requested, free } => {
                write!(f, "element {element} cannot provide {requested}; only {free} free")
            }
            ClaimError::ElementFailed(e) => write!(f, "element {e} is failed"),
            ClaimError::LinkSaturated { link, requested } => {
                write!(f, "link {link} cannot carry {requested} more bandwidth")
            }
        }
    }
}

impl std::error::Error for ClaimError {}

/// Snapshot of the mutable platform state, produced by
/// [`Platform::checkpoint`] and consumed by [`Platform::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformCheckpoint {
    state: PlatformState,
}

/// One undoable ledger mutation, recorded while a transaction is open.
///
/// Each op stores exactly what [`Platform::rollback_txn`] needs to invert
/// it; the journal is the cheap alternative to cloning the whole
/// [`PlatformState`] per allocation attempt.
#[derive(Debug, Clone, PartialEq)]
enum JournalOp {
    /// `claim` succeeded: undo by releasing `(app, task)` from `element`.
    Claim { element: ElementId, app: AppId, task: u32 },
    /// `release` succeeded: undo by re-seating the occupant at `pos`,
    /// exactly inverting the `swap_remove` that evicted it (so rollback
    /// restores resident order byte-for-byte, which what-if probes over
    /// pre-transaction occupants rely on).
    Release { element: ElementId, occupant: Occupant, pos: usize },
    /// `claim_link` succeeded: undo by returning the virtual channel.
    ClaimLink { link: LinkId, bandwidth: u64 },
    /// `release_link` ran: undo by re-reserving the virtual channel.
    ReleaseLink { link: LinkId, bandwidth: u64 },
    /// `fail_element`/`repair_element` flipped the mark from `was`.
    SetFailed { element: ElementId, was: bool },
    /// `transfer_app` relabelled one occupant: undo by relabelling back.
    Transfer { element: ElementId, task: u32, from: AppId, to: AppId },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PlatformState {
    free: Vec<ResourceVector>,
    residents: Vec<Vec<Occupant>>,
    links: Vec<LinkState>,
    failed: Vec<bool>,
}

/// A heterogeneous MPSoC platform: elements, directed links and the
/// run-time resource ledger.
///
/// Construct one through [`PlatformBuilder`](crate::PlatformBuilder) or a
/// topology helper such as [`topology::crisp`](crate::topology::crisp).
///
/// # Examples
///
/// ```
/// use kairos_platform::{PlatformBuilder, ElementKind, ResourceVector};
///
/// let mut b = PlatformBuilder::new("demo");
/// let a = b.add_element(ElementKind::Dsp, ResourceVector::new(100, 8, 0, 0));
/// let c = b.add_element(ElementKind::Dsp, ResourceVector::new(100, 8, 0, 0));
/// b.connect(a, c, 1000, 4);
/// let platform = b.build();
/// assert_eq!(platform.element_count(), 2);
/// assert_eq!(platform.link_count(), 2); // connect() adds both directions
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    elements: Vec<Element>,
    links: Vec<Link>,
    /// Outgoing adjacency: for each element, `(neighbor, link)` pairs.
    out_adj: Vec<Vec<(ElementId, LinkId)>>,
    /// Incoming adjacency: for each element, `(neighbor, link)` pairs.
    in_adj: Vec<Vec<(ElementId, LinkId)>>,
    state: PlatformState,
    /// Undo log of ledger mutations since the outermost open transaction.
    /// Empty whenever no transaction is open.
    journal: Vec<JournalOp>,
    /// Journal positions of the currently open (possibly nested)
    /// transactions, innermost last.
    txn_marks: Vec<usize>,
    /// Count of *top-level* transactions ever begun (nested transactions
    /// are not counted): the batching metric — one batched submission of N
    /// requests opens one top-level transaction where N sequential
    /// submissions open N. A `kairos-telemetry` counter (the workspace's
    /// one counter implementation); its `Clone` copies the value, so
    /// checkpoints freeze the tally exactly like the former plain field.
    txns_begun: Counter,
    /// Monotone mutation epoch: bumped by every mutation of the ledger
    /// state, including transaction rollbacks and checkpoint restores.
    /// Occupancy-dependent observers (the `kairos-opcache` state-stamp
    /// memo) key their caches on this instead of re-hashing `O(|E|+|L|)`
    /// state per query. The epoch over-approximates change — a bump does
    /// not guarantee the state differs, but an unchanged epoch guarantees
    /// it is byte-identical.
    epoch: MutationEpoch,
}

/// The [`Platform::state_epoch`] counter. A newtype so it can opt out of
/// equality: the epoch describes *history*, not state — two platforms
/// with identical ledgers are interchangeable no matter how many
/// mutations produced them, and the checkpoint/restore-exactness and
/// probe-state-neutrality pins compare whole platforms on exactly that
/// basis.
#[derive(Debug, Clone, Copy, Default)]
struct MutationEpoch(u64);

impl PartialEq for MutationEpoch {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Platform {
    pub(crate) fn from_parts(name: String, elements: Vec<Element>, links: Vec<Link>) -> Self {
        let n = elements.len();
        let mut out_adj = vec![Vec::new(); n];
        let mut in_adj = vec![Vec::new(); n];
        for link in &links {
            out_adj[link.src().index()].push((link.dst(), link.id()));
            in_adj[link.dst().index()].push((link.src(), link.id()));
        }
        let state = PlatformState {
            free: elements.iter().map(|e| e.capacity()).collect(),
            residents: vec![Vec::new(); n],
            links: links.iter().map(LinkState::idle).collect(),
            failed: vec![false; n],
        };
        Platform {
            name,
            elements,
            links,
            out_adj,
            in_adj,
            state,
            journal: Vec::new(),
            txn_marks: Vec::new(),
            txns_begun: Counter::new(),
            epoch: MutationEpoch::default(),
        }
    }

    /// The current mutation epoch (see the field documentation): strictly
    /// monotone over the platform's lifetime, bumped by every state
    /// mutation — claims, releases, failure-mark flips, transfers,
    /// transaction rollbacks *and* [`Self::restore`].
    pub fn state_epoch(&self) -> u64 {
        self.epoch.0
    }

    /// Bumps the mutation epoch; called by every state mutator.
    #[inline]
    fn touch(&mut self) {
        self.epoch.0 += 1;
    }

    /// The platform's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processing elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The element with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this platform.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.index()]
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this platform.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Iterates over all elements.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.elements.iter()
    }

    /// Iterates over all element ids.
    pub fn element_ids(&self) -> impl Iterator<Item = ElementId> {
        (0..self.elements.len() as u32).map(ElementId)
    }

    /// Iterates over all links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Elements of a given kind.
    pub fn elements_of_kind(&self, kind: ElementKind) -> impl Iterator<Item = &Element> {
        self.elements.iter().filter(move |e| e.kind() == kind)
    }

    /// Outgoing `(neighbor, link)` pairs of `e`.
    pub fn successors(&self, e: ElementId) -> &[(ElementId, LinkId)] {
        &self.out_adj[e.index()]
    }

    /// Incoming `(neighbor, link)` pairs of `e`.
    pub fn predecessors(&self, e: ElementId) -> &[(ElementId, LinkId)] {
        &self.in_adj[e.index()]
    }

    /// All distinct neighbors of `e`, ignoring link direction.
    pub fn neighbors(&self, e: ElementId) -> Vec<ElementId> {
        let mut out: Vec<ElementId> = self.out_adj[e.index()]
            .iter()
            .map(|&(n, _)| n)
            .chain(self.in_adj[e.index()].iter().map(|&(n, _)| n))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The undirected degree of `e` (number of distinct neighbors).
    pub fn degree(&self, e: ElementId) -> usize {
        self.neighbors(e).len()
    }

    /// The maximum undirected degree over all elements, 0 for an empty platform.
    pub fn max_degree(&self) -> usize {
        self.element_ids().map(|e| self.degree(e)).max().unwrap_or(0)
    }

    /// The link from `src` to `dst`, if one exists.
    pub fn link_between(&self, src: ElementId, dst: ElementId) -> Option<LinkId> {
        self.out_adj[src.index()].iter().find(|&&(n, _)| n == dst).map(|&(_, l)| l)
    }

    // ---- dynamic state: elements ------------------------------------------------

    /// Free resources currently available on `e`.
    pub fn free(&self, e: ElementId) -> ResourceVector {
        self.state.free[e.index()]
    }

    /// `true` when at least one task resides on `e`.
    pub fn is_used(&self, e: ElementId) -> bool {
        !self.state.residents[e.index()].is_empty()
    }

    /// `true` when `e` has been marked failed.
    pub fn is_failed(&self, e: ElementId) -> bool {
        self.state.failed[e.index()]
    }

    /// Tasks currently residing on `e`.
    pub fn residents(&self, e: ElementId) -> &[Occupant] {
        &self.state.residents[e.index()]
    }

    /// Availability test `av(e, t)` on the quantity axis: the element is
    /// alive and provides at least `demand` free resources.
    pub fn is_available(&self, e: ElementId, demand: &ResourceVector) -> bool {
        !self.is_failed(e) && self.free(e).fits(demand)
    }

    /// Claims `occupant.claimed` resources on `e` and records the occupant.
    ///
    /// # Errors
    ///
    /// [`ClaimError::ElementFailed`] when `e` is failed,
    /// [`ClaimError::InsufficientResources`] when the free vector does not
    /// cover the claim.
    pub fn claim(&mut self, e: ElementId, occupant: Occupant) -> Result<(), ClaimError> {
        if self.is_failed(e) {
            return Err(ClaimError::ElementFailed(e));
        }
        let free = self.state.free[e.index()];
        match free.checked_sub(&occupant.claimed) {
            Some(rest) => {
                self.state.free[e.index()] = rest;
                self.record(|| JournalOp::Claim {
                    element: e,
                    app: occupant.app,
                    task: occupant.task,
                });
                self.state.residents[e.index()].push(occupant);
                self.touch();
                Ok(())
            }
            None => Err(ClaimError::InsufficientResources {
                element: e,
                requested: occupant.claimed,
                free,
            }),
        }
    }

    /// Releases the occupant `(app, task)` from `e`, returning its claim.
    ///
    /// Returns `None` (and changes nothing) when the occupant is not present.
    pub fn release(&mut self, e: ElementId, app: AppId, task: u32) -> Option<ResourceVector> {
        let pos =
            self.state.residents[e.index()].iter().position(|o| o.app == app && o.task == task)?;
        let occupant = self.state.residents[e.index()].swap_remove(pos);
        self.state.free[e.index()] = self.state.free[e.index()].saturating_add(&occupant.claimed);
        self.record(|| JournalOp::Release { element: e, occupant, pos });
        self.touch();
        Some(occupant.claimed)
    }

    /// Releases every occupant of application `app` on every element and
    /// returns how many were released. Link claims are *not* touched; the
    /// resource manager releases routes explicitly.
    pub fn release_app(&mut self, app: AppId) -> usize {
        let mut count = 0;
        for idx in 0..self.elements.len() {
            let mut i = 0;
            while i < self.state.residents[idx].len() {
                if self.state.residents[idx][i].app == app {
                    let occ = self.state.residents[idx].swap_remove(i);
                    self.state.free[idx] = self.state.free[idx].saturating_add(&occ.claimed);
                    self.record(|| JournalOp::Release {
                        element: ElementId(idx as u32),
                        occupant: occ,
                        pos: i,
                    });
                    count += 1;
                } else {
                    i += 1;
                }
            }
        }
        if count > 0 {
            self.touch();
        }
        count
    }

    /// Reassigns every occupant of application `from` to application `to`,
    /// keeping elements, task indices and claimed resources untouched, and
    /// returns how many occupants changed hands.
    ///
    /// This is the *transfer* step of a live migration: the resource
    /// manager claims the new placement under a scratch id (so claims of
    /// the moving application never collide with its own old ones),
    /// releases the old placement, then transfers the scratch claims to
    /// the application's real id. Each relabel is journaled, so a
    /// transaction rollback restores the original ownership exactly.
    ///
    /// # Panics
    ///
    /// Panics when `to` already has an occupant with the same task index
    /// on an element hosting a `from` occupant of that task: the
    /// `(app, task)` pair identifies occupants within an element, so such
    /// a transfer would make later releases — and the journaled undo —
    /// ambiguous. Live migration never hits this (the old claims are
    /// released before the transfer).
    pub fn transfer_app(&mut self, from: AppId, to: AppId) -> usize {
        let mut count = 0;
        for idx in 0..self.elements.len() {
            for pos in 0..self.state.residents[idx].len() {
                if self.state.residents[idx][pos].app == from {
                    let task = self.state.residents[idx][pos].task;
                    assert!(
                        !self.state.residents[idx].iter().any(|o| o.app == to && o.task == task),
                        "transfer of {from} task {task} to {to} collides with an existing \
                         occupant on element {idx}"
                    );
                    self.state.residents[idx][pos].app = to;
                    self.record(|| JournalOp::Transfer {
                        element: ElementId(idx as u32),
                        task,
                        from,
                        to,
                    });
                    count += 1;
                }
            }
        }
        if count > 0 {
            self.touch();
        }
        count
    }

    // ---- dynamic state: links ---------------------------------------------------

    /// Remaining bandwidth on link `l`.
    pub fn link_free_bandwidth(&self, l: LinkId) -> u64 {
        self.state.links[l.index()].free_bandwidth
    }

    /// Remaining virtual channels on link `l`.
    pub fn link_free_virtual_channels(&self, l: LinkId) -> u16 {
        self.state.links[l.index()].free_virtual_channels
    }

    /// `true` when link `l` can still accept a channel of `bandwidth`.
    pub fn link_available(&self, l: LinkId, bandwidth: u64) -> bool {
        let s = &self.state.links[l.index()];
        s.free_virtual_channels > 0 && s.free_bandwidth >= bandwidth
    }

    /// Reserves one virtual channel carrying `bandwidth` on link `l`.
    ///
    /// # Errors
    ///
    /// [`ClaimError::LinkSaturated`] when no virtual channel or not enough
    /// bandwidth is left.
    pub fn claim_link(&mut self, l: LinkId, bandwidth: u64) -> Result<(), ClaimError> {
        let s = &mut self.state.links[l.index()];
        if s.free_virtual_channels == 0 || s.free_bandwidth < bandwidth {
            return Err(ClaimError::LinkSaturated { link: l, requested: bandwidth });
        }
        s.free_virtual_channels -= 1;
        s.free_bandwidth -= bandwidth;
        self.record(|| JournalOp::ClaimLink { link: l, bandwidth });
        self.touch();
        Ok(())
    }

    /// Returns one virtual channel carrying `bandwidth` to link `l`.
    ///
    /// # Panics
    ///
    /// Panics if the release would exceed the link's physical capacity,
    /// which indicates an unbalanced claim/release pair in the caller.
    pub fn release_link(&mut self, l: LinkId, bandwidth: u64) {
        let cap = self.links[l.index()];
        let s = &mut self.state.links[l.index()];
        s.free_virtual_channels += 1;
        s.free_bandwidth += bandwidth;
        assert!(
            s.free_virtual_channels <= cap.virtual_channels()
                && s.free_bandwidth <= cap.bandwidth(),
            "unbalanced link release on {l}"
        );
        self.record(|| JournalOp::ReleaseLink { link: l, bandwidth });
        self.touch();
    }

    // ---- faults -----------------------------------------------------------------

    /// Marks `e` as failed. Already-residing occupants stay recorded (the
    /// resource manager decides what to re-allocate); new claims are refused
    /// and searches skip the element.
    pub fn fail_element(&mut self, e: ElementId) {
        let was = self.state.failed[e.index()];
        self.state.failed[e.index()] = true;
        self.record(|| JournalOp::SetFailed { element: e, was });
        self.touch();
    }

    /// Clears the failure mark on `e`.
    pub fn repair_element(&mut self, e: ElementId) {
        let was = self.state.failed[e.index()];
        self.state.failed[e.index()] = false;
        self.record(|| JournalOp::SetFailed { element: e, was });
        self.touch();
    }

    /// Ids of all currently failed elements.
    pub fn failed_elements(&self) -> Vec<ElementId> {
        self.element_ids().filter(|&e| self.is_failed(e)).collect()
    }

    // ---- transactions -----------------------------------------------------------

    /// Records `op()` when at least one transaction is open.
    #[inline]
    fn record(&mut self, op: impl FnOnce() -> JournalOp) {
        if !self.txn_marks.is_empty() {
            self.journal.push(op());
        }
    }

    /// Opens a transaction: every subsequent ledger mutation (element and
    /// link claims/releases, failure-mark flips) is journaled until the
    /// matching [`Self::commit_txn`] or [`Self::rollback_txn`].
    ///
    /// Transactions nest: an inner rollback undoes only the inner ops, an
    /// inner commit folds them into the enclosing transaction. This is the
    /// admission hot path's cheap alternative to [`Self::checkpoint`]: cost
    /// is proportional to the mutations actually made, not to `|E| + |L|`.
    pub fn begin_txn(&mut self) {
        if self.txn_marks.is_empty() {
            self.txns_begun.inc();
        }
        self.txn_marks.push(self.journal.len());
    }

    /// Number of top-level transactions begun over the platform's lifetime
    /// (nested transactions fold into their enclosing one and are not
    /// counted). Batched service submission exists to shrink this number:
    /// `cargo bench -p kairos-bench --bench service_batch` reports it for
    /// batched versus sequential admission of the same arrival wave.
    pub fn txn_count(&self) -> u64 {
        self.txns_begun.get()
    }

    /// Closes the innermost transaction, keeping its mutations.
    ///
    /// # Panics
    ///
    /// Panics when no transaction is open.
    pub fn commit_txn(&mut self) {
        self.txn_marks.pop().expect("commit_txn without an open transaction");
        if self.txn_marks.is_empty() {
            self.journal.clear();
        }
    }

    /// Closes the innermost transaction, undoing its mutations in reverse
    /// order. The rollback is an exact inverse: resource quantities,
    /// occupant ownership *and* resident record order are restored
    /// byte-for-byte — what-if probes (preemption planning, migration)
    /// release pre-transaction occupants and rely on a rolled-back state
    /// being indistinguishable from the original.
    ///
    /// # Panics
    ///
    /// Panics when no transaction is open.
    pub fn rollback_txn(&mut self) {
        let mark = self.txn_marks.pop().expect("rollback_txn without an open transaction");
        if self.journal.len() > mark {
            self.touch();
        }
        while self.journal.len() > mark {
            let op = self.journal.pop().expect("journal length checked");
            self.undo(op);
        }
    }

    /// Whether a transaction is currently open.
    pub fn txn_active(&self) -> bool {
        !self.txn_marks.is_empty()
    }

    /// Inverts one journaled op, bypassing journal recording.
    fn undo(&mut self, op: JournalOp) {
        match op {
            JournalOp::Claim { element, app, task } => {
                let residents = &mut self.state.residents[element.index()];
                let pos = residents
                    .iter()
                    .rposition(|o| o.app == app && o.task == task)
                    .expect("journaled claim is still seated");
                let occ = residents.swap_remove(pos);
                self.state.free[element.index()] =
                    self.state.free[element.index()].saturating_add(&occ.claimed);
            }
            JournalOp::Release { element, occupant, pos } => {
                self.state.free[element.index()] = self.state.free[element.index()]
                    .checked_sub(&occupant.claimed)
                    .expect("undoing a journaled release fits by construction");
                // Exactly invert the release's `swap_remove(pos)`: append,
                // then swap the appended occupant back into `pos`.
                let residents = &mut self.state.residents[element.index()];
                residents.push(occupant);
                let last = residents.len() - 1;
                residents.swap(pos, last);
            }
            JournalOp::ClaimLink { link, bandwidth } => {
                let s = &mut self.state.links[link.index()];
                s.free_virtual_channels += 1;
                s.free_bandwidth += bandwidth;
            }
            JournalOp::ReleaseLink { link, bandwidth } => {
                let s = &mut self.state.links[link.index()];
                s.free_virtual_channels -= 1;
                s.free_bandwidth -= bandwidth;
            }
            JournalOp::SetFailed { element, was } => {
                self.state.failed[element.index()] = was;
            }
            JournalOp::Transfer { element, task, from, to } => {
                let occ = self.state.residents[element.index()]
                    .iter_mut()
                    .find(|o| o.app == to && o.task == task)
                    .expect("journaled transfer target is still seated");
                occ.app = from;
            }
        }
    }

    // ---- checkpointing ----------------------------------------------------------

    /// Captures the complete mutable state.
    ///
    /// A checkpoint may be taken while a transaction is open — it captures
    /// the live state including any not-yet-committed journal mutations,
    /// and stays valid after the transaction commits or rolls back. The
    /// restriction is on the other side: [`Self::restore`] refuses to run
    /// while a transaction is open, because overwriting the state would
    /// orphan the journal entries describing how to undo it.
    pub fn checkpoint(&self) -> PlatformCheckpoint {
        PlatformCheckpoint { state: self.state.clone() }
    }

    /// Restores a previously captured state.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is open (commit or roll back first — see
    /// [`Self::checkpoint`]), or if the checkpoint was taken from a
    /// structurally different platform (different element or link count).
    pub fn restore(&mut self, checkpoint: PlatformCheckpoint) {
        assert!(
            self.txn_marks.is_empty(),
            "restore during an open transaction would corrupt the journal; \
             roll back or commit first"
        );
        assert_eq!(
            checkpoint.state.free.len(),
            self.elements.len(),
            "checkpoint does not belong to this platform"
        );
        assert_eq!(
            checkpoint.state.links.len(),
            self.links.len(),
            "checkpoint does not belong to this platform"
        );
        self.state = checkpoint.state;
        // A restore is a state mutation like any other: without this bump,
        // epoch-keyed observers (the opcache state-stamp memo) would keep
        // serving the pre-restore state and, for example, admit a cached
        // layout computed against occupancy that no longer exists.
        self.touch();
    }

    /// `true` when no resources are claimed anywhere (all elements idle,
    /// all links at full capacity). Failure marks are ignored.
    pub fn is_idle(&self) -> bool {
        self.elements
            .iter()
            .enumerate()
            .all(|(i, e)| self.state.free[i] == e.capacity() && self.state.residents[i].is_empty())
            && self.links.iter().enumerate().all(|(i, l)| self.state.links[i] == LinkState::idle(l))
    }

    /// Total free resources summed over all non-failed elements.
    pub fn total_free(&self) -> ResourceVector {
        self.element_ids().filter(|&e| !self.is_failed(e)).map(|e| self.free(e)).sum()
    }

    /// Total capacity summed over all non-failed elements.
    pub fn total_capacity(&self) -> ResourceVector {
        self.elements.iter().filter(|e| !self.is_failed(e.id())).map(|e| e.capacity()).sum()
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "platform '{}': {} elements, {} links",
            self.name,
            self.element_count(),
            self.link_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;

    fn two_dsp() -> (Platform, ElementId, ElementId) {
        let mut b = PlatformBuilder::new("t");
        let a = b.add_element(ElementKind::Dsp, ResourceVector::new(100, 10, 0, 0));
        let c = b.add_element(ElementKind::Dsp, ResourceVector::new(100, 10, 0, 0));
        b.connect(a, c, 1000, 2);
        (b.build(), a, c)
    }

    fn occ(app: u32, task: u32, r: ResourceVector) -> Occupant {
        Occupant { app: AppId(app), task, claimed: r }
    }

    #[test]
    fn claim_and_release_roundtrip() {
        let (mut p, a, _) = two_dsp();
        let before = p.checkpoint();
        p.claim(a, occ(0, 0, ResourceVector::new(60, 5, 0, 0))).unwrap();
        assert_eq!(p.free(a), ResourceVector::new(40, 5, 0, 0));
        assert!(p.is_used(a));
        assert_eq!(p.release(a, AppId(0), 0), Some(ResourceVector::new(60, 5, 0, 0)));
        assert!(!p.is_used(a));
        assert_eq!(p.checkpoint(), before);
        assert!(p.is_idle());
    }

    #[test]
    fn claim_rejects_overcommit() {
        let (mut p, a, _) = two_dsp();
        let err = p.claim(a, occ(0, 0, ResourceVector::new(101, 0, 0, 0))).unwrap_err();
        assert!(matches!(err, ClaimError::InsufficientResources { .. }));
        assert!(p.is_idle());
    }

    #[test]
    fn claim_rejects_failed_element() {
        let (mut p, a, _) = two_dsp();
        p.fail_element(a);
        let err = p.claim(a, occ(0, 0, ResourceVector::ZERO)).unwrap_err();
        assert_eq!(err, ClaimError::ElementFailed(a));
        assert_eq!(p.failed_elements(), vec![a]);
        p.repair_element(a);
        assert!(p.claim(a, occ(0, 0, ResourceVector::ZERO)).is_ok());
    }

    #[test]
    fn release_unknown_occupant_is_none() {
        let (mut p, a, _) = two_dsp();
        assert_eq!(p.release(a, AppId(9), 9), None);
    }

    #[test]
    fn release_app_clears_all_claims() {
        let (mut p, a, c) = two_dsp();
        p.claim(a, occ(1, 0, ResourceVector::new(10, 0, 0, 0))).unwrap();
        p.claim(c, occ(1, 1, ResourceVector::new(20, 0, 0, 0))).unwrap();
        p.claim(c, occ(2, 0, ResourceVector::new(30, 0, 0, 0))).unwrap();
        assert_eq!(p.release_app(AppId(1)), 2);
        assert_eq!(p.free(a), ResourceVector::new(100, 10, 0, 0));
        assert_eq!(p.free(c), ResourceVector::new(70, 10, 0, 0));
        assert_eq!(p.residents(c).len(), 1);
    }

    #[test]
    fn link_claims_track_vc_and_bandwidth() {
        let (mut p, a, c) = two_dsp();
        let l = p.link_between(a, c).unwrap();
        assert!(p.link_available(l, 600));
        p.claim_link(l, 600).unwrap();
        assert_eq!(p.link_free_bandwidth(l), 400);
        assert_eq!(p.link_free_virtual_channels(l), 1);
        assert!(!p.link_available(l, 500));
        p.claim_link(l, 400).unwrap();
        let err = p.claim_link(l, 0).unwrap_err();
        assert!(matches!(err, ClaimError::LinkSaturated { .. }));
        p.release_link(l, 400);
        p.release_link(l, 600);
        assert!(p.is_idle());
    }

    #[test]
    #[should_panic(expected = "unbalanced link release")]
    fn unbalanced_link_release_panics() {
        let (mut p, a, c) = two_dsp();
        let l = p.link_between(a, c).unwrap();
        p.release_link(l, 1);
    }

    #[test]
    fn checkpoint_restore_undoes_everything() {
        let (mut p, a, c) = two_dsp();
        let cp = p.checkpoint();
        p.claim(a, occ(0, 0, ResourceVector::new(50, 0, 0, 0))).unwrap();
        let l = p.link_between(a, c).unwrap();
        p.claim_link(l, 100).unwrap();
        p.fail_element(c);
        p.restore(cp);
        assert!(p.is_idle());
        assert!(!p.is_failed(c));
    }

    #[test]
    fn adjacency_is_directional() {
        let mut b = PlatformBuilder::new("dir");
        let a = b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        let c = b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        b.connect_directed(a, c, 10, 1);
        let p = b.build();
        assert_eq!(p.successors(a).len(), 1);
        assert_eq!(p.predecessors(a).len(), 0);
        assert_eq!(p.successors(c).len(), 0);
        assert_eq!(p.predecessors(c).len(), 1);
        assert_eq!(p.neighbors(a), vec![c]);
        assert_eq!(p.neighbors(c), vec![a]);
        assert_eq!(p.degree(a), 1);
        assert_eq!(p.link_between(c, a), None);
    }

    #[test]
    fn txn_rollback_is_an_exact_inverse() {
        let (mut p, a, c) = two_dsp();
        // Pre-existing occupant outside any transaction.
        p.claim(a, occ(7, 0, ResourceVector::new(10, 1, 0, 0))).unwrap();
        let before = p.checkpoint();

        p.begin_txn();
        p.claim(a, occ(0, 0, ResourceVector::new(30, 2, 0, 0))).unwrap();
        p.claim(c, occ(0, 1, ResourceVector::new(40, 3, 0, 0))).unwrap();
        // Backtrack one of our own claims mid-transaction.
        assert!(p.release(a, AppId(0), 0).is_some());
        p.claim(a, occ(0, 2, ResourceVector::new(5, 0, 0, 0))).unwrap();
        let l = p.link_between(a, c).unwrap();
        p.claim_link(l, 200).unwrap();
        p.release_link(l, 200);
        p.claim_link(l, 300).unwrap();
        p.fail_element(c);
        p.rollback_txn();

        assert_eq!(p.checkpoint(), before, "rollback must restore the exact pre-txn state");
        assert!(!p.txn_active());
    }

    #[test]
    fn txn_commit_keeps_mutations_and_nests() {
        let (mut p, a, c) = two_dsp();
        p.begin_txn();
        p.claim(a, occ(0, 0, ResourceVector::new(10, 0, 0, 0))).unwrap();
        // Inner transaction rolled back: its claim disappears, the outer
        // claim survives.
        p.begin_txn();
        p.claim(c, occ(0, 1, ResourceVector::new(20, 0, 0, 0))).unwrap();
        p.rollback_txn();
        assert!(p.txn_active());
        // Inner transaction committed: folded into the outer one.
        p.begin_txn();
        p.claim(c, occ(0, 2, ResourceVector::new(30, 0, 0, 0))).unwrap();
        p.commit_txn();
        p.commit_txn();
        assert!(!p.txn_active());
        assert_eq!(p.free(a), ResourceVector::new(90, 10, 0, 0));
        assert_eq!(p.free(c), ResourceVector::new(70, 10, 0, 0));
        // An outer rollback after a nested commit undoes everything.
        let before = p.checkpoint();
        p.begin_txn();
        p.begin_txn();
        p.claim(a, occ(1, 0, ResourceVector::new(15, 0, 0, 0))).unwrap();
        p.commit_txn();
        p.rollback_txn();
        assert_eq!(p.checkpoint(), before);
    }

    #[test]
    fn txn_count_tracks_top_level_transactions_only() {
        let (mut p, a, _) = two_dsp();
        assert_eq!(p.txn_count(), 0);
        p.begin_txn();
        p.begin_txn(); // nested: not counted
        p.claim(a, occ(0, 0, ResourceVector::new(10, 0, 0, 0))).unwrap();
        p.rollback_txn();
        p.commit_txn();
        assert_eq!(p.txn_count(), 1);
        p.begin_txn();
        p.rollback_txn();
        assert_eq!(p.txn_count(), 2, "rolled-back top-level transactions count too");
    }

    #[test]
    fn transfer_app_relabels_occupants_and_rolls_back() {
        let (mut p, a, c) = two_dsp();
        p.claim(a, occ(3, 0, ResourceVector::new(10, 1, 0, 0))).unwrap();
        p.claim(c, occ(3, 1, ResourceVector::new(20, 2, 0, 0))).unwrap();
        p.claim(c, occ(4, 0, ResourceVector::new(5, 0, 0, 0))).unwrap();
        let before = p.checkpoint();

        p.begin_txn();
        assert_eq!(p.transfer_app(AppId(3), AppId(9)), 2);
        assert!(p.residents(a).iter().all(|o| o.app == AppId(9)));
        assert!(p.residents(c).iter().any(|o| o.app == AppId(9) && o.task == 1));
        assert!(p.residents(c).iter().any(|o| o.app == AppId(4)), "other apps untouched");
        assert_eq!(p.free(a), ResourceVector::new(90, 9, 0, 0), "no resources move");
        p.rollback_txn();
        assert_eq!(p.checkpoint(), before, "rollback restores the original ownership");

        p.begin_txn();
        assert_eq!(p.transfer_app(AppId(3), AppId(9)), 2);
        p.commit_txn();
        assert_eq!(p.release_app(AppId(9)), 2);
        assert_eq!(p.release_app(AppId(3)), 0);
    }

    #[test]
    #[should_panic(expected = "collides with an existing occupant")]
    fn ambiguous_transfer_is_refused() {
        // A transfer that would seat two (app, task) duplicates on one
        // element would make releases and journal undo ambiguous.
        let (mut p, a, _) = two_dsp();
        p.claim(a, occ(1, 0, ResourceVector::new(10, 0, 0, 0))).unwrap();
        p.claim(a, occ(2, 0, ResourceVector::new(10, 0, 0, 0))).unwrap();
        p.transfer_app(AppId(2), AppId(1));
    }

    #[test]
    fn transfer_of_unknown_app_is_a_noop() {
        let (mut p, a, _) = two_dsp();
        p.claim(a, occ(1, 0, ResourceVector::new(10, 0, 0, 0))).unwrap();
        let before = p.checkpoint();
        assert_eq!(p.transfer_app(AppId(7), AppId(8)), 0);
        assert_eq!(p.checkpoint(), before);
    }

    #[test]
    #[should_panic(expected = "without an open transaction")]
    fn rollback_without_txn_panics() {
        let (mut p, _, _) = two_dsp();
        p.rollback_txn();
    }

    #[test]
    #[should_panic(expected = "open transaction")]
    fn restore_during_txn_panics() {
        let (mut p, _, _) = two_dsp();
        let cp = p.checkpoint();
        p.begin_txn();
        p.restore(cp);
    }

    #[test]
    fn checkpoint_restore_round_trips_across_transactions() {
        // The PR 2 journal migration left checkpoint()/restore() for
        // baselines and tests; this pins how the two mechanisms compose.
        let (mut p, a, c) = two_dsp();
        p.claim(a, occ(1, 0, ResourceVector::new(25, 2, 0, 0))).unwrap();

        // A checkpoint taken *inside* an open transaction captures the
        // live (uncommitted) state and stays valid after the txn ends.
        p.begin_txn();
        p.claim(c, occ(1, 1, ResourceVector::new(40, 4, 0, 0))).unwrap();
        let mid_txn = p.checkpoint();
        p.commit_txn();
        assert_eq!(p.checkpoint(), mid_txn, "commit keeps exactly what the checkpoint saw");

        // A rolled-back transaction diverges from a mid-txn checkpoint;
        // restore brings the captured state back byte-for-byte.
        p.begin_txn();
        assert!(p.release(c, AppId(1), 1).is_some());
        p.claim(a, occ(2, 0, ResourceVector::new(5, 1, 0, 0))).unwrap();
        p.rollback_txn();
        assert_eq!(p.checkpoint(), mid_txn, "rollback already restored the pre-txn state");
        p.release(c, AppId(1), 1).unwrap();
        assert_ne!(p.checkpoint(), mid_txn);
        p.restore(mid_txn.clone());
        assert_eq!(p.checkpoint(), mid_txn, "restore is an exact round-trip");

        // The journal machinery is fully functional after a restore: a
        // fresh transaction rolls back to the restored state exactly.
        p.begin_txn();
        p.claim(a, occ(3, 0, ResourceVector::new(10, 0, 0, 0))).unwrap();
        let l = p.link_between(a, c).unwrap();
        p.claim_link(l, 150).unwrap();
        p.rollback_txn();
        assert_eq!(p.checkpoint(), mid_txn, "post-restore transactions roll back cleanly");
    }

    #[test]
    fn state_epoch_tracks_every_mutation_including_restore() {
        let (mut p, a, c) = two_dsp();
        let e0 = p.state_epoch();
        // Failed claims change nothing and leave the epoch alone.
        assert!(p.claim(a, occ(0, 0, ResourceVector::new(101, 0, 0, 0))).is_err());
        assert_eq!(p.state_epoch(), e0);
        p.claim(a, occ(0, 0, ResourceVector::new(10, 0, 0, 0))).unwrap();
        assert!(p.state_epoch() > e0);

        // Rollback restores the state bytes but advances the epoch.
        let cp = p.checkpoint();
        let before_txn = p.state_epoch();
        p.begin_txn();
        p.claim(c, occ(1, 0, ResourceVector::new(5, 0, 0, 0))).unwrap();
        p.rollback_txn();
        assert_eq!(p.checkpoint(), cp, "rollback restored the state");
        assert!(p.state_epoch() > before_txn, "rollback still bumps the epoch");

        // The PR 8 regression: restore() is a mutation too. An unchanged
        // epoch across restore would let a memoized state observer keep
        // answering for the pre-restore occupancy.
        let fuller = {
            p.claim(c, occ(2, 0, ResourceVector::new(7, 0, 0, 0))).unwrap();
            p.checkpoint()
        };
        p.restore(cp.clone());
        let restored_epoch = p.state_epoch();
        p.restore(fuller);
        assert!(p.state_epoch() > restored_epoch, "restore must bump the epoch");
    }

    #[test]
    fn totals_exclude_failed_elements() {
        let (mut p, a, _) = two_dsp();
        assert_eq!(p.total_capacity(), ResourceVector::new(200, 20, 0, 0));
        p.fail_element(a);
        assert_eq!(p.total_capacity(), ResourceVector::new(100, 10, 0, 0));
        assert_eq!(p.total_free(), ResourceVector::new(100, 10, 0, 0));
    }
}
