//! Directed NoC links — the edges `L ⊆ E × E` of the platform graph.
//!
//! Following Kavaldjiev et al. (cited as [11] in the paper), links time-share
//! their physical bandwidth through a fixed number of *virtual channels*. A
//! routed application channel reserves one virtual channel and a bandwidth
//! share on every link of its route.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::element::ElementId;

/// Identifier of a directed link within one [`Platform`](crate::Platform).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The dense index of this link.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Static description of a directed communication link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    id: LinkId,
    src: ElementId,
    dst: ElementId,
    bandwidth: u64,
    virtual_channels: u16,
}

impl Link {
    pub(crate) fn new(
        id: LinkId,
        src: ElementId,
        dst: ElementId,
        bandwidth: u64,
        virtual_channels: u16,
    ) -> Self {
        Link { id, src, dst, bandwidth, virtual_channels }
    }

    /// This link's identifier.
    #[inline]
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Source element.
    #[inline]
    pub fn src(&self) -> ElementId {
        self.src
    }

    /// Destination element.
    #[inline]
    pub fn dst(&self) -> ElementId {
        self.dst
    }

    /// Total physical bandwidth, in abstract units per time-slot.
    #[inline]
    pub fn bandwidth(&self) -> u64 {
        self.bandwidth
    }

    /// Number of virtual channels that may time-share this link.
    #[inline]
    pub fn virtual_channels(&self) -> u16 {
        self.virtual_channels
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} (bw {}, vc {})",
            self.id, self.src, self.dst, self.bandwidth, self.virtual_channels
        )
    }
}

/// Mutable occupancy of a link: remaining bandwidth and free virtual channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct LinkState {
    pub free_bandwidth: u64,
    pub free_virtual_channels: u16,
}

impl LinkState {
    pub(crate) fn idle(link: &Link) -> Self {
        LinkState {
            free_bandwidth: link.bandwidth(),
            free_virtual_channels: link.virtual_channels(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_accessors() {
        let l = Link::new(LinkId(2), ElementId(0), ElementId(1), 1000, 4);
        assert_eq!(l.id(), LinkId(2));
        assert_eq!(l.src(), ElementId(0));
        assert_eq!(l.dst(), ElementId(1));
        assert_eq!(l.bandwidth(), 1000);
        assert_eq!(l.virtual_channels(), 4);
        assert_eq!(l.id().index(), 2);
    }

    #[test]
    fn idle_state_matches_capacity() {
        let l = Link::new(LinkId(0), ElementId(0), ElementId(1), 500, 2);
        let s = LinkState::idle(&l);
        assert_eq!(s.free_bandwidth, 500);
        assert_eq!(s.free_virtual_channels, 2);
    }

    #[test]
    fn display_mentions_endpoints() {
        let l = Link::new(LinkId(9), ElementId(3), ElementId(4), 100, 1);
        let s = l.to_string();
        assert!(s.contains("e3") && s.contains("e4") && s.contains("l9"));
    }
}
