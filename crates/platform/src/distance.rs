//! Hop-distance queries over the platform graph.
//!
//! The mapping phase of the paper builds a *sparse distance matrix* while it
//! searches the platform for candidate elements; cost evaluation then looks
//! distances up in that matrix and charges a penalty when a lookup fails
//! (§III-D). [`SparseDistanceMatrix`] is that structure; the free functions
//! provide full single-source BFS for metrics and baselines.

use std::collections::{HashMap, VecDeque};

use crate::element::ElementId;
use crate::platform::Platform;

/// Direction in which links are traversed during a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchDirection {
    /// Follow links from source to destination (data flows *to* the frontier).
    Forward,
    /// Follow links against their direction (data flows *from* the frontier).
    Backward,
    /// Ignore link direction.
    Undirected,
}

/// Single-source BFS hop distances; `None` for unreachable or failed elements.
///
/// Failed elements are opaque: they are neither visited nor traversed.
pub fn bfs_distances(
    platform: &Platform,
    source: ElementId,
    direction: SearchDirection,
) -> Vec<Option<u32>> {
    let mut dist = vec![None; platform.element_count()];
    if platform.is_failed(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(e) = queue.pop_front() {
        let d = dist[e.index()].expect("queued elements have distances");
        for n in step(platform, e, direction) {
            if platform.is_failed(n) || dist[n.index()].is_some() {
                continue;
            }
            dist[n.index()] = Some(d + 1);
            queue.push_back(n);
        }
    }
    dist
}

/// Hop distance from `src` to `dst` (directed), `None` when unreachable.
pub fn hop_distance(platform: &Platform, src: ElementId, dst: ElementId) -> Option<u32> {
    bfs_distances(platform, src, SearchDirection::Forward)[dst.index()]
}

fn step(platform: &Platform, e: ElementId, direction: SearchDirection) -> Vec<ElementId> {
    match direction {
        SearchDirection::Forward => platform.successors(e).iter().map(|&(n, _)| n).collect(),
        SearchDirection::Backward => platform.predecessors(e).iter().map(|&(n, _)| n).collect(),
        SearchDirection::Undirected => platform.neighbors(e),
    }
}

/// Sparse pairwise hop distances discovered during element search.
///
/// Keys are `(origin, discovered)` pairs. The matrix only ever contains
/// distances the search actually encountered; [`SparseDistanceMatrix::get`]
/// returns `None` for everything else, which the mapping cost function
/// converts into a penalty (the paper's "relative high penalty" on lookup
/// failure).
///
/// # Examples
///
/// ```
/// use kairos_platform::{SparseDistanceMatrix, ElementId};
///
/// let mut m = SparseDistanceMatrix::new();
/// m.record(ElementId(0), ElementId(3), 2);
/// assert_eq!(m.get(ElementId(0), ElementId(3)), Some(2));
/// assert_eq!(m.get(ElementId(3), ElementId(0)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseDistanceMatrix {
    entries: HashMap<(ElementId, ElementId), u32>,
}

impl SparseDistanceMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the distance from `origin` to `discovered`, keeping the
    /// minimum when called twice for the same pair.
    pub fn record(&mut self, origin: ElementId, discovered: ElementId, hops: u32) {
        self.entries
            .entry((origin, discovered))
            .and_modify(|d| *d = (*d).min(hops))
            .or_insert(hops);
    }

    /// Looks up the recorded distance from `origin` to `discovered`.
    pub fn get(&self, origin: ElementId, discovered: ElementId) -> Option<u32> {
        if origin == discovered {
            return Some(0);
        }
        self.entries.get(&(origin, discovered)).copied()
    }

    /// Distance in either direction, preferring `origin -> discovered`.
    ///
    /// The platform's bidirectional NoC channels make hop counts symmetric in
    /// practice, so a reverse entry is an acceptable estimate when the
    /// forward one was never discovered.
    pub fn get_symmetric(&self, a: ElementId, b: ElementId) -> Option<u32> {
        self.get(a, b).or_else(|| self.get(b, a))
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all recorded pairs.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::element::ElementKind;
    use crate::resource::ResourceVector;

    fn line(n: usize) -> (Platform, Vec<ElementId>) {
        let mut b = PlatformBuilder::new("line");
        let ids: Vec<_> =
            (0..n).map(|_| b.add_element(ElementKind::Dsp, ResourceVector::splat(1))).collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1], 100, 2);
        }
        (b.build(), ids)
    }

    #[test]
    fn bfs_on_line_counts_hops() {
        let (p, ids) = line(4);
        let d = bfs_distances(&p, ids[0], SearchDirection::Forward);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(hop_distance(&p, ids[3], ids[0]), Some(3));
    }

    #[test]
    fn bfs_respects_direction() {
        let mut b = PlatformBuilder::new("dir");
        let a = b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        let c = b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        b.connect_directed(a, c, 10, 1);
        let p = b.build();
        assert_eq!(hop_distance(&p, a, c), Some(1));
        assert_eq!(hop_distance(&p, c, a), None);
        let back = bfs_distances(&p, c, SearchDirection::Backward);
        assert_eq!(back[a.index()], Some(1));
        let und = bfs_distances(&p, c, SearchDirection::Undirected);
        assert_eq!(und[a.index()], Some(1));
    }

    #[test]
    fn bfs_skips_failed_elements() {
        let (mut p, ids) = line(4);
        p.fail_element(ids[1]);
        let d = bfs_distances(&p, ids[0], SearchDirection::Forward);
        assert_eq!(d[ids[1].index()], None);
        assert_eq!(d[ids[2].index()], None, "failure cuts the line");
        p.fail_element(ids[0]);
        let d = bfs_distances(&p, ids[0], SearchDirection::Forward);
        assert!(d.iter().all(Option::is_none));
    }

    #[test]
    fn sparse_matrix_keeps_minimum() {
        let mut m = SparseDistanceMatrix::new();
        m.record(ElementId(0), ElementId(1), 5);
        m.record(ElementId(0), ElementId(1), 3);
        m.record(ElementId(0), ElementId(1), 9);
        assert_eq!(m.get(ElementId(0), ElementId(1)), Some(3));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sparse_matrix_self_distance_is_zero() {
        let m = SparseDistanceMatrix::new();
        assert_eq!(m.get(ElementId(7), ElementId(7)), Some(0));
        assert!(m.is_empty());
    }

    #[test]
    fn symmetric_lookup_falls_back() {
        let mut m = SparseDistanceMatrix::new();
        m.record(ElementId(2), ElementId(5), 4);
        assert_eq!(m.get_symmetric(ElementId(5), ElementId(2)), Some(4));
        assert_eq!(m.get_symmetric(ElementId(5), ElementId(6)), None);
        m.clear();
        assert!(m.is_empty());
    }
}
