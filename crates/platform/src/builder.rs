//! Incremental construction of [`Platform`] values.

use crate::element::{Element, ElementId, ElementKind};
use crate::link::{Link, LinkId};
use crate::platform::Platform;
use crate::resource::ResourceVector;

/// Builder for [`Platform`] graphs.
///
/// Elements receive dense ids in insertion order; [`PlatformBuilder::connect`]
/// adds a *pair* of directed links (one per direction), matching the
/// bidirectional NoC channels of the CRISP platform, while
/// [`PlatformBuilder::connect_directed`] adds a single directed link for
/// irregular architectures.
///
/// # Examples
///
/// ```
/// use kairos_platform::{PlatformBuilder, ElementKind, ResourceVector};
///
/// let mut b = PlatformBuilder::new("line3");
/// let ids: Vec<_> = (0..3)
///     .map(|_| b.add_element(ElementKind::Dsp, ResourceVector::new(100, 16, 0, 0)))
///     .collect();
/// b.connect(ids[0], ids[1], 1000, 4);
/// b.connect(ids[1], ids[2], 1000, 4);
/// let p = b.build();
/// assert_eq!(p.degree(ids[1]), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    name: String,
    elements: Vec<Element>,
    links: Vec<Link>,
}

impl PlatformBuilder {
    /// Creates an empty builder for a platform called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        PlatformBuilder { name: name.into(), elements: Vec::new(), links: Vec::new() }
    }

    /// Adds an element with an auto-generated name (`<kind><index>`).
    pub fn add_element(&mut self, kind: ElementKind, capacity: ResourceVector) -> ElementId {
        let name = format!("{}{}", kind.label(), self.elements.len());
        self.add_named_element(kind, name, capacity)
    }

    /// Adds an element with an explicit name.
    pub fn add_named_element(
        &mut self,
        kind: ElementKind,
        name: impl Into<String>,
        capacity: ResourceVector,
    ) -> ElementId {
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element::new(id, kind, name.into(), capacity));
        id
    }

    /// Adds a single directed link `src -> dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is unknown or `src == dst` (self-links make
    /// no sense in the NoC model; co-located tasks communicate for free).
    pub fn connect_directed(
        &mut self,
        src: ElementId,
        dst: ElementId,
        bandwidth: u64,
        virtual_channels: u16,
    ) -> LinkId {
        assert!(src.index() < self.elements.len(), "unknown source element {src}");
        assert!(dst.index() < self.elements.len(), "unknown destination element {dst}");
        assert_ne!(src, dst, "self-links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, src, dst, bandwidth, virtual_channels));
        id
    }

    /// Adds a bidirectional connection as two directed links, returning
    /// `(src -> dst, dst -> src)`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PlatformBuilder::connect_directed`].
    pub fn connect(
        &mut self,
        a: ElementId,
        b: ElementId,
        bandwidth: u64,
        virtual_channels: u16,
    ) -> (LinkId, LinkId) {
        let forward = self.connect_directed(a, b, bandwidth, virtual_channels);
        let backward = self.connect_directed(b, a, bandwidth, virtual_channels);
        (forward, backward)
    }

    /// Number of elements added so far.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Number of directed links added so far.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Finalises the platform.
    pub fn build(self) -> Platform {
        Platform::from_parts(self.name, self.elements, self.links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = PlatformBuilder::new("x");
        let e0 = b.add_element(ElementKind::Arm, ResourceVector::splat(1));
        let e1 = b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        assert_eq!(e0, ElementId(0));
        assert_eq!(e1, ElementId(1));
        assert_eq!(b.element_count(), 2);
        let p = b.build();
        assert_eq!(p.element(e0).kind(), ElementKind::Arm);
        assert_eq!(p.element(e1).name(), "dsp1");
    }

    #[test]
    fn connect_adds_two_links() {
        let mut b = PlatformBuilder::new("x");
        let a = b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        let c = b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        let (f, r) = b.connect(a, c, 7, 3);
        assert_eq!(b.link_count(), 2);
        let p = b.build();
        assert_eq!(p.link(f).src(), a);
        assert_eq!(p.link(r).src(), c);
        assert_eq!(p.link(f).bandwidth(), 7);
        assert_eq!(p.link(r).virtual_channels(), 3);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut b = PlatformBuilder::new("x");
        let a = b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        b.connect_directed(a, a, 1, 1);
    }

    #[test]
    #[should_panic(expected = "unknown destination")]
    fn unknown_endpoint_panics() {
        let mut b = PlatformBuilder::new("x");
        let a = b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        b.connect_directed(a, ElementId(5), 1, 1);
    }

    #[test]
    fn named_elements_keep_their_names() {
        let mut b = PlatformBuilder::new("x");
        let id = b.add_named_element(ElementKind::Fpga, "front-fpga", ResourceVector::ZERO);
        let p = b.build();
        assert_eq!(p.element(id).name(), "front-fpga");
    }
}
