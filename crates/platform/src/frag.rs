//! External resource fragmentation, as defined in §III-A of the paper:
//!
//! > We define external resource fragmentation as the percentage of pairs of
//! > adjacent elements of which only one element is used, over all pairs of
//! > adjacent elements in the platform.
//!
//! Low fragmentation means used elements form contiguous regions, leaving
//! contiguous free regions for future applications.

use crate::element::ElementId;
use crate::platform::Platform;

/// All unordered adjacent element pairs of the platform.
///
/// A pair `{a, b}` is adjacent when a link exists in either direction; the
/// pair is reported once with `a < b`.
pub fn adjacent_pairs(platform: &Platform) -> Vec<(ElementId, ElementId)> {
    let mut pairs = Vec::new();
    for e in platform.element_ids() {
        for n in platform.neighbors(e) {
            if e < n {
                pairs.push((e, n));
            }
        }
    }
    pairs
}

/// External resource fragmentation in `[0, 1]`.
///
/// Returns 0.0 for platforms without any adjacent pair (no links).
///
/// # Examples
///
/// ```
/// use kairos_platform::{topology, external_fragmentation};
///
/// let platform = topology::dsp_line(3);
/// assert_eq!(external_fragmentation(&platform), 0.0); // nothing used
/// ```
pub fn external_fragmentation(platform: &Platform) -> f64 {
    let pairs = adjacent_pairs(platform);
    if pairs.is_empty() {
        return 0.0;
    }
    let mixed = pairs.iter().filter(|&&(a, b)| platform.is_used(a) != platform.is_used(b)).count();
    mixed as f64 / pairs.len() as f64
}

/// Fraction of elements with at least one resident task, in `[0, 1]`.
pub fn element_utilisation(platform: &Platform) -> f64 {
    if platform.element_count() == 0 {
        return 0.0;
    }
    let used = platform.element_ids().filter(|&e| platform.is_used(e)).count();
    used as f64 / platform.element_count() as f64
}

/// Number of connected "islands" of free (unused, non-failed) elements.
///
/// A platform fragmenting into many small free islands is the failure mode
/// the fragmentation objective of the mapping cost function tries to avoid.
pub fn free_island_count(platform: &Platform) -> usize {
    let n = platform.element_count();
    let mut visited = vec![false; n];
    let mut islands = 0;
    for start in platform.element_ids() {
        if visited[start.index()] || platform.is_used(start) || platform.is_failed(start) {
            continue;
        }
        islands += 1;
        let mut stack = vec![start];
        visited[start.index()] = true;
        while let Some(e) = stack.pop() {
            for nb in platform.neighbors(e) {
                if !visited[nb.index()] && !platform.is_used(nb) && !platform.is_failed(nb) {
                    visited[nb.index()] = true;
                    stack.push(nb);
                }
            }
        }
    }
    islands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::element::ElementKind;
    use crate::platform::{AppId, Occupant};
    use crate::resource::ResourceVector;

    fn line(n: usize) -> (Platform, Vec<ElementId>) {
        let mut b = PlatformBuilder::new("line");
        let ids: Vec<_> =
            (0..n).map(|_| b.add_element(ElementKind::Dsp, ResourceVector::splat(10))).collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1], 100, 2);
        }
        (b.build(), ids)
    }

    fn use_element(p: &mut Platform, e: ElementId, task: u32) {
        p.claim(e, Occupant { app: AppId(0), task, claimed: ResourceVector::splat(1) }).unwrap();
    }

    #[test]
    fn empty_platform_has_zero_fragmentation() {
        let (p, _) = line(5);
        assert_eq!(external_fragmentation(&p), 0.0);
        assert_eq!(element_utilisation(&p), 0.0);
        assert_eq!(free_island_count(&p), 1);
    }

    #[test]
    fn adjacent_pairs_are_unique_and_undirected() {
        let (p, _) = line(4);
        let pairs = adjacent_pairs(&p);
        assert_eq!(pairs.len(), 3);
        for (a, b) in &pairs {
            assert!(a < b);
        }
    }

    #[test]
    fn fully_used_platform_has_zero_fragmentation() {
        let (mut p, ids) = line(4);
        for (t, &e) in ids.iter().enumerate() {
            use_element(&mut p, e, t as u32);
        }
        assert_eq!(external_fragmentation(&p), 0.0);
        assert_eq!(element_utilisation(&p), 1.0);
        assert_eq!(free_island_count(&p), 0);
    }

    #[test]
    fn alternating_usage_maximises_fragmentation() {
        // line of 4: used(0), free(1), used(2), free(3) -> all 3 pairs mixed.
        let (mut p, ids) = line(4);
        use_element(&mut p, ids[0], 0);
        use_element(&mut p, ids[2], 1);
        assert_eq!(external_fragmentation(&p), 1.0);
        assert_eq!(free_island_count(&p), 2);
    }

    #[test]
    fn contiguous_usage_minimises_fragmentation() {
        // line of 4: used(0), used(1), free(2), free(3) -> 1 of 3 pairs mixed.
        let (mut p, ids) = line(4);
        use_element(&mut p, ids[0], 0);
        use_element(&mut p, ids[1], 1);
        assert!((external_fragmentation(&p) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(free_island_count(&p), 1);
    }

    #[test]
    fn failed_elements_do_not_count_as_free_islands() {
        let (mut p, ids) = line(3);
        p.fail_element(ids[1]);
        assert_eq!(free_island_count(&p), 2);
    }

    #[test]
    fn no_links_means_no_pairs() {
        let mut b = PlatformBuilder::new("isolated");
        b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        b.add_element(ElementKind::Dsp, ResourceVector::splat(1));
        let p = b.build();
        assert!(adjacent_pairs(&p).is_empty());
        assert_eq!(external_fragmentation(&p), 0.0);
    }
}
