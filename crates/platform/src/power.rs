//! Per-element-class power model — busy/idle draw rates in milliwatts.
//!
//! The §III-A cost model scores mappings, but energy over *time* needs a
//! rate model: every [`ElementKind`] draws a busy rate while at least one
//! task resides on an element of that kind, and an idle rate otherwise.
//! Failed elements draw nothing (they are powered off by the dependability
//! manager). Rates are plain integer milliwatts so every downstream
//! integration stays exact and byte-reproducible.
//!
//! [`PowerModel::table1_defaults`] derives per-class defaults from the
//! relative weight of the Table-I element classes of the paper's CRISP
//! evaluation platform; scenarios may override any class.

use serde::{Deserialize, Serialize};

use crate::element::ElementKind;

/// Busy/idle power draw of one element class, in integer milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerRate {
    /// Draw while at least one task resides on the element.
    pub busy_mw: u64,
    /// Draw while the element is idle (no residents, not failed).
    pub idle_mw: u64,
}

impl PowerRate {
    /// A rate pair; callers should keep `idle_mw <= busy_mw`.
    pub const fn new(busy_mw: u64, idle_mw: u64) -> Self {
        PowerRate { busy_mw, idle_mw }
    }
}

/// Per-[`ElementKind`] busy/idle power rates.
///
/// Indexed by the position of the kind in [`ElementKind::ALL`]; failed
/// elements always draw zero regardless of class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerModel {
    rates: [PowerRate; ElementKind::ALL.len()],
}

impl PowerModel {
    /// Default rates derived from the Table-I element classes: the FPGA
    /// fabric dominates, DSP cores sit mid-range above the ARM host's
    /// always-on baseline, and memories/test units/IO draw little.
    pub const fn table1_defaults() -> Self {
        PowerModel {
            rates: [
                PowerRate::new(450, 120),  // Arm
                PowerRate::new(300, 90),   // Dsp
                PowerRate::new(1200, 350), // Fpga
                PowerRate::new(150, 40),   // Memory
                PowerRate::new(80, 20),    // TestUnit
                PowerRate::new(100, 30),   // Io
            ],
        }
    }

    /// The rate pair for `kind`.
    #[inline]
    pub fn rate(&self, kind: ElementKind) -> PowerRate {
        self.rates[Self::slot(kind)]
    }

    /// Overrides the rate pair for `kind`.
    pub fn set_rate(&mut self, kind: ElementKind, rate: PowerRate) {
        self.rates[Self::slot(kind)] = rate;
    }

    /// Instantaneous draw of one element of `kind`: zero when failed,
    /// otherwise the busy or idle rate.
    #[inline]
    pub fn draw_mw(&self, kind: ElementKind, busy: bool, failed: bool) -> u64 {
        if failed {
            return 0;
        }
        let rate = self.rate(kind);
        if busy {
            rate.busy_mw
        } else {
            rate.idle_mw
        }
    }

    /// `true` when every class keeps `idle_mw <= busy_mw`.
    pub fn is_consistent(&self) -> bool {
        self.rates.iter().all(|r| r.idle_mw <= r.busy_mw)
    }

    fn slot(kind: ElementKind) -> usize {
        ElementKind::ALL.iter().position(|k| *k == kind).expect("every ElementKind appears in ALL")
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::table1_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent_and_ordered() {
        let model = PowerModel::table1_defaults();
        assert!(model.is_consistent());
        // FPGA dominates every other class; idle is always cheaper than busy.
        for kind in ElementKind::ALL {
            let rate = model.rate(kind);
            assert!(rate.idle_mw <= rate.busy_mw);
            assert!(rate.busy_mw <= model.rate(ElementKind::Fpga).busy_mw);
        }
    }

    #[test]
    fn draw_respects_busy_and_failure() {
        let model = PowerModel::default();
        let dsp = model.rate(ElementKind::Dsp);
        assert_eq!(model.draw_mw(ElementKind::Dsp, true, false), dsp.busy_mw);
        assert_eq!(model.draw_mw(ElementKind::Dsp, false, false), dsp.idle_mw);
        assert_eq!(model.draw_mw(ElementKind::Dsp, true, true), 0);
        assert_eq!(model.draw_mw(ElementKind::Dsp, false, true), 0);
    }

    #[test]
    fn overrides_apply_per_kind() {
        let mut model = PowerModel::table1_defaults();
        model.set_rate(ElementKind::Memory, PowerRate::new(500, 10));
        assert_eq!(model.rate(ElementKind::Memory), PowerRate::new(500, 10));
        assert_eq!(
            model.rate(ElementKind::Dsp),
            PowerModel::table1_defaults().rate(ElementKind::Dsp)
        );
        assert!(model.is_consistent());
    }
}
