//! ASCII rendering of platform occupancy — the operator's view of the
//! resource manager's state, used by the examples and handy when debugging
//! mapping decisions.

use std::fmt::Write as _;

use crate::platform::Platform;

/// One-character occupancy class of an element.
fn glyph(platform: &Platform, e: crate::ElementId) -> char {
    if platform.is_failed(e) {
        return 'X';
    }
    match platform.residents(e).len() {
        0 => '.',
        1 => 'o',
        2..=3 => '8',
        _ => '#',
    }
}

/// Renders a compact one-line-per-element occupancy listing.
///
/// Each line shows the element name, kind, occupancy glyph
/// (`.` idle, `o` one task, `8` two-three tasks, `#` more, `X` failed),
/// resident task count and free/capacity compute units.
pub fn render_occupancy(platform: &Platform) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "occupancy of '{}':", platform.name());
    for e in platform.element_ids() {
        let el = platform.element(e);
        let _ = writeln!(
            out,
            "  {} {:<12} [{}] tasks={:<2} free={}",
            glyph(platform, e),
            el.name(),
            el.kind(),
            platform.residents(e).len(),
            platform.free(e),
        );
    }
    out
}

/// Renders the occupancy glyphs as a single dense strip in element-id
/// order — useful for eyeballing fragmentation at a glance.
///
/// # Examples
///
/// ```
/// use kairos_platform::{topology, render_strip};
///
/// let platform = topology::dsp_line(5);
/// assert_eq!(render_strip(&platform), ".....");
/// ```
pub fn render_strip(platform: &Platform) -> String {
    platform.element_ids().map(|e| glyph(platform, e)).collect()
}

/// Renders per-link utilisation for links with any claims, as
/// `src->dst: used_bw/bw vc_used/vc` lines. Idle links are omitted.
pub fn render_link_load(platform: &Platform) -> String {
    let mut out = String::new();
    for link in platform.links() {
        let free_bw = platform.link_free_bandwidth(link.id());
        let free_vc = platform.link_free_virtual_channels(link.id());
        if free_bw == link.bandwidth() && free_vc == link.virtual_channels() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {}->{}: bw {}/{} vc {}/{}",
            platform.element(link.src()).name(),
            platform.element(link.dst()).name(),
            link.bandwidth() - free_bw,
            link.bandwidth(),
            link.virtual_channels() - free_vc,
            link.virtual_channels(),
        );
    }
    if out.is_empty() {
        out.push_str("  (all links idle)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{AppId, Occupant};
    use crate::resource::ResourceVector;
    use crate::topology;

    #[test]
    fn strip_tracks_occupancy_classes() {
        let mut p = topology::dsp_line(4);
        let e: Vec<_> = p.element_ids().collect();
        p.claim(e[0], Occupant { app: AppId(0), task: 0, claimed: ResourceVector::ZERO }).unwrap();
        p.claim(e[1], Occupant { app: AppId(0), task: 1, claimed: ResourceVector::ZERO }).unwrap();
        p.claim(e[1], Occupant { app: AppId(0), task: 2, claimed: ResourceVector::ZERO }).unwrap();
        p.fail_element(e[3]);
        assert_eq!(render_strip(&p), "o8.X");
    }

    #[test]
    fn occupancy_listing_mentions_every_element() {
        let p = topology::dsp_line(3);
        let s = render_occupancy(&p);
        assert_eq!(s.lines().count(), 4); // header + 3 elements
        assert!(s.contains("dsp0") && s.contains("dsp2"));
    }

    #[test]
    fn link_load_lists_only_used_links() {
        let mut p = topology::dsp_line(2);
        assert!(render_link_load(&p).contains("all links idle"));
        let e: Vec<_> = p.element_ids().collect();
        let l = p.link_between(e[0], e[1]).unwrap();
        p.claim_link(l, 250).unwrap();
        let s = render_link_load(&p);
        assert!(s.contains("bw 250/1000"));
        assert!(s.contains("vc 1/"));
        assert_eq!(s.lines().count(), 1);
    }
}
