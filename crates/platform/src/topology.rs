//! Ready-made platform topologies, including the CRISP General Stream
//! Processor evaluated in the paper (Fig. 6).

use crate::builder::PlatformBuilder;
use crate::element::{ElementId, ElementKind};
use crate::platform::Platform;
use crate::resource::ResourceVector;

/// Default link bandwidth, in abstract units per time-slot.
pub const DEFAULT_LINK_BANDWIDTH: u64 = 1000;
/// Default number of virtual channels per link, after Kavaldjiev et al.
pub const DEFAULT_VIRTUAL_CHANNELS: u16 = 6;

/// Reference capacity vector for each element kind.
///
/// The workload generator expresses task demands as a *fraction* of the
/// target kind's reference capacity (the paper's "tasks use between 70% and
/// 100% of the element's resources").
pub fn default_capacity(kind: ElementKind) -> ResourceVector {
    match kind {
        ElementKind::Arm => ResourceVector::new(800, 1024, 0, 4),
        ElementKind::Dsp => ResourceVector::new(1000, 64, 0, 0),
        ElementKind::Fpga => ResourceVector::new(400, 256, 10_000, 8),
        ElementKind::Memory => ResourceVector::new(0, 4096, 0, 0),
        ElementKind::TestUnit => ResourceVector::new(200, 32, 0, 1),
        ElementKind::Io => ResourceVector::new(0, 16, 0, 4),
    }
}

/// Configuration knobs for [`crisp_custom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrispConfig {
    /// Number of DSP packages ("reconfigurable fabric devices"); 5 in CRISP.
    pub packages: usize,
    /// Bandwidth of every on-chip NoC link.
    pub link_bandwidth: u64,
    /// Virtual channels per on-chip link.
    pub virtual_channels: u16,
    /// Bandwidth of chip-to-chip bridge links (package-package, FPGA and
    /// ARM attachments) — narrower than on-chip links, as off-chip I/O is.
    pub bridge_bandwidth: u64,
    /// Virtual channels per bridge link.
    pub bridge_virtual_channels: u16,
}

impl Default for CrispConfig {
    fn default() -> Self {
        CrispConfig {
            packages: 5,
            link_bandwidth: DEFAULT_LINK_BANDWIDTH,
            virtual_channels: DEFAULT_VIRTUAL_CHANNELS,
            bridge_bandwidth: 800,
            bridge_virtual_channels: 4,
        }
    }
}

/// The CRISP platform of the paper: an FPGA (left), five packages of
/// 9 DSPs + 2 memories + 1 hardware test unit, and an ARM host (right).
///
/// Element counts match §IV-A: 45 DSPs over 5 packages, 62 elements total.
/// Each package is a 3-wide, 4-row mesh (DSP rows on top, memory/test row at
/// the bottom); adjacent packages are bridged by two links, making the
/// platform noticeably *less connected than a full mesh*, as the paper notes
/// when discussing fragmentation.
///
/// # Examples
///
/// ```
/// use kairos_platform::{topology, ElementKind};
///
/// let p = topology::crisp();
/// assert_eq!(p.element_count(), 62);
/// assert_eq!(p.elements_of_kind(ElementKind::Dsp).count(), 45);
/// ```
pub fn crisp() -> Platform {
    crisp_custom(CrispConfig::default())
}

/// [`crisp`] with custom package count and link parameters.
///
/// # Panics
///
/// Panics if `config.packages` is zero.
pub fn crisp_custom(config: CrispConfig) -> Platform {
    assert!(config.packages > 0, "CRISP platform needs at least one package");
    let bw = config.link_bandwidth;
    let vc = config.virtual_channels;
    let mut b = PlatformBuilder::new(format!("crisp-{}pkg", config.packages));

    let fpga = b.add_named_element(ElementKind::Fpga, "fpga0", default_capacity(ElementKind::Fpga));

    // Per package: 3 columns x 4 rows; rows 0..2 are DSPs, row 3 is mem,mem,tst.
    const COLS: usize = 3;
    const ROWS: usize = 4;
    let mut packages: Vec<Vec<ElementId>> = Vec::new();
    for p in 0..config.packages {
        let mut grid = Vec::with_capacity(COLS * ROWS);
        for row in 0..ROWS {
            for col in 0..COLS {
                let idx = row * COLS + col;
                let id = if row < 3 {
                    b.add_named_element(
                        ElementKind::Dsp,
                        format!("pkg{p}/dsp{idx}"),
                        default_capacity(ElementKind::Dsp),
                    )
                } else if col < 2 {
                    b.add_named_element(
                        ElementKind::Memory,
                        format!("pkg{p}/mem{col}"),
                        default_capacity(ElementKind::Memory),
                    )
                } else {
                    b.add_named_element(
                        ElementKind::TestUnit,
                        format!("pkg{p}/tst0"),
                        default_capacity(ElementKind::TestUnit),
                    )
                };
                grid.push(id);
            }
        }
        // Intra-package mesh.
        for row in 0..ROWS {
            for col in 0..COLS {
                let here = grid[row * COLS + col];
                if col + 1 < COLS {
                    b.connect(here, grid[row * COLS + col + 1], bw, vc);
                }
                if row + 1 < ROWS {
                    b.connect(here, grid[(row + 1) * COLS + col], bw, vc);
                }
            }
        }
        packages.push(grid);
    }

    // Inter-package bridges: east column (col 2) of package p to west column
    // (col 0) of package p+1, on DSP rows 0 and 2 only. Bridges are
    // chip-to-chip and narrower than the on-chip mesh.
    let bbw = config.bridge_bandwidth;
    let bvc = config.bridge_virtual_channels;
    for p in 0..config.packages.saturating_sub(1) {
        for row in [0usize, 2] {
            let east = packages[p][row * COLS + (COLS - 1)];
            let west = packages[p + 1][row * COLS];
            b.connect(east, west, bbw, bvc);
        }
    }

    // FPGA bridges into package 0's west column.
    for row in [0usize, 2] {
        b.connect(fpga, packages[0][row * COLS], bbw, bvc);
    }

    // ARM host bridges into the last package's east column.
    let arm = b.add_named_element(ElementKind::Arm, "arm0", default_capacity(ElementKind::Arm));
    let last = config.packages - 1;
    for row in [0usize, 2] {
        b.connect(packages[last][row * COLS + (COLS - 1)], arm, bbw, bvc);
    }

    b.build()
}

/// A `width x height` mesh of DSP elements with default capacities.
///
/// # Panics
///
/// Panics when `width * height == 0`.
pub fn dsp_mesh(width: usize, height: usize) -> Platform {
    assert!(width * height > 0, "mesh must contain at least one element");
    let mut b = PlatformBuilder::new(format!("mesh-{width}x{height}"));
    let mut ids = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        ids.push(b.add_element(ElementKind::Dsp, default_capacity(ElementKind::Dsp)));
    }
    for row in 0..height {
        for col in 0..width {
            let here = ids[row * width + col];
            if col + 1 < width {
                b.connect(
                    here,
                    ids[row * width + col + 1],
                    DEFAULT_LINK_BANDWIDTH,
                    DEFAULT_VIRTUAL_CHANNELS,
                );
            }
            if row + 1 < height {
                b.connect(
                    here,
                    ids[(row + 1) * width + col],
                    DEFAULT_LINK_BANDWIDTH,
                    DEFAULT_VIRTUAL_CHANNELS,
                );
            }
        }
    }
    b.build()
}

/// A line (open chain) of `n` DSP elements.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn dsp_line(n: usize) -> Platform {
    assert!(n > 0, "line must contain at least one element");
    let mut b = PlatformBuilder::new(format!("line-{n}"));
    let ids: Vec<_> = (0..n)
        .map(|_| b.add_element(ElementKind::Dsp, default_capacity(ElementKind::Dsp)))
        .collect();
    for w in ids.windows(2) {
        b.connect(w[0], w[1], DEFAULT_LINK_BANDWIDTH, DEFAULT_VIRTUAL_CHANNELS);
    }
    b.build()
}

/// A ring (closed chain) of `n` DSP elements.
///
/// # Panics
///
/// Panics when `n < 3`.
pub fn dsp_ring(n: usize) -> Platform {
    assert!(n >= 3, "ring needs at least three elements");
    let mut b = PlatformBuilder::new(format!("ring-{n}"));
    let ids: Vec<_> = (0..n)
        .map(|_| b.add_element(ElementKind::Dsp, default_capacity(ElementKind::Dsp)))
        .collect();
    for i in 0..n {
        b.connect(ids[i], ids[(i + 1) % n], DEFAULT_LINK_BANDWIDTH, DEFAULT_VIRTUAL_CHANNELS);
    }
    b.build()
}

/// A star: one ARM hub connected to `n` DSP leaves.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn star(n: usize) -> Platform {
    assert!(n > 0, "star needs at least one leaf");
    let mut b = PlatformBuilder::new(format!("star-{n}"));
    let hub = b.add_element(ElementKind::Arm, default_capacity(ElementKind::Arm));
    for _ in 0..n {
        let leaf = b.add_element(ElementKind::Dsp, default_capacity(ElementKind::Dsp));
        b.connect(hub, leaf, DEFAULT_LINK_BANDWIDTH, DEFAULT_VIRTUAL_CHANNELS);
    }
    b.build()
}

/// A small heterogeneous mesh for tests: DSPs with a memory tile every
/// fourth position, an FPGA in the first cell and an ARM in the last.
///
/// # Panics
///
/// Panics when `width * height < 4`.
pub fn heterogeneous_mesh(width: usize, height: usize) -> Platform {
    assert!(width * height >= 4, "heterogeneous mesh needs at least four cells");
    let mut b = PlatformBuilder::new(format!("hetmesh-{width}x{height}"));
    let total = width * height;
    let mut ids = Vec::with_capacity(total);
    for i in 0..total {
        let kind = if i == 0 {
            ElementKind::Fpga
        } else if i == total - 1 {
            ElementKind::Arm
        } else if i % 4 == 3 {
            ElementKind::Memory
        } else {
            ElementKind::Dsp
        };
        ids.push(b.add_element(kind, default_capacity(kind)));
    }
    for row in 0..height {
        for col in 0..width {
            let here = ids[row * width + col];
            if col + 1 < width {
                b.connect(
                    here,
                    ids[row * width + col + 1],
                    DEFAULT_LINK_BANDWIDTH,
                    DEFAULT_VIRTUAL_CHANNELS,
                );
            }
            if row + 1 < height {
                b.connect(
                    here,
                    ids[(row + 1) * width + col],
                    DEFAULT_LINK_BANDWIDTH,
                    DEFAULT_VIRTUAL_CHANNELS,
                );
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{bfs_distances, SearchDirection};

    #[test]
    fn crisp_matches_paper_inventory() {
        let p = crisp();
        assert_eq!(p.element_count(), 62); // fpga + 5*12 + arm
        assert_eq!(p.elements_of_kind(ElementKind::Dsp).count(), 45);
        assert_eq!(p.elements_of_kind(ElementKind::Memory).count(), 10);
        assert_eq!(p.elements_of_kind(ElementKind::TestUnit).count(), 5);
        assert_eq!(p.elements_of_kind(ElementKind::Arm).count(), 1);
        assert_eq!(p.elements_of_kind(ElementKind::Fpga).count(), 1);
    }

    #[test]
    fn crisp_is_connected() {
        let p = crisp();
        let fpga = p.elements_of_kind(ElementKind::Fpga).next().unwrap().id();
        let d = bfs_distances(&p, fpga, SearchDirection::Forward);
        assert!(d.iter().all(Option::is_some), "every element reachable from the FPGA");
    }

    #[test]
    fn crisp_is_less_connected_than_a_mesh() {
        // The same element count in a full mesh would have far more links.
        let p = crisp();
        let mesh = dsp_mesh(8, 8); // 64 elements, comparable size
        let crisp_avg = p.link_count() as f64 / p.element_count() as f64;
        let mesh_avg = mesh.link_count() as f64 / mesh.element_count() as f64;
        assert!(crisp_avg < mesh_avg);
    }

    #[test]
    fn crisp_custom_scales_packages() {
        let p = crisp_custom(CrispConfig { packages: 2, ..CrispConfig::default() });
        assert_eq!(p.element_count(), 2 + 2 * 12);
        assert_eq!(p.elements_of_kind(ElementKind::Dsp).count(), 18);
    }

    #[test]
    #[should_panic(expected = "at least one package")]
    fn crisp_zero_packages_panics() {
        let _ = crisp_custom(CrispConfig { packages: 0, ..CrispConfig::default() });
    }

    #[test]
    fn mesh_dimensions_and_degrees() {
        let p = dsp_mesh(3, 3);
        assert_eq!(p.element_count(), 9);
        // corner degree 2, edge degree 3, center degree 4
        let degrees: Vec<_> = p.element_ids().map(|e| p.degree(e)).collect();
        assert_eq!(degrees.iter().filter(|&&d| d == 2).count(), 4);
        assert_eq!(degrees.iter().filter(|&&d| d == 3).count(), 4);
        assert_eq!(degrees.iter().filter(|&&d| d == 4).count(), 1);
        assert_eq!(p.max_degree(), 4);
    }

    #[test]
    fn ring_and_line_shapes() {
        let ring = dsp_ring(5);
        assert!(ring.element_ids().all(|e| ring.degree(e) == 2));
        let line = dsp_line(5);
        assert_eq!(line.element_ids().filter(|&e| line.degree(e) == 1).count(), 2);
    }

    #[test]
    fn star_shape() {
        let p = star(6);
        assert_eq!(p.element_count(), 7);
        assert_eq!(p.max_degree(), 6);
    }

    #[test]
    fn heterogeneous_mesh_contains_all_roles() {
        let p = heterogeneous_mesh(4, 4);
        assert_eq!(p.elements_of_kind(ElementKind::Fpga).count(), 1);
        assert_eq!(p.elements_of_kind(ElementKind::Arm).count(), 1);
        assert!(p.elements_of_kind(ElementKind::Memory).count() >= 2);
        assert!(p.elements_of_kind(ElementKind::Dsp).count() >= 8);
    }

    #[test]
    fn default_capacities_are_kind_consistent() {
        use crate::resource::ResourceKind;
        assert!(default_capacity(ElementKind::Dsp).get(ResourceKind::Compute) > 0);
        assert_eq!(default_capacity(ElementKind::Memory).get(ResourceKind::Compute), 0);
        assert!(default_capacity(ElementKind::Fpga).get(ResourceKind::Area) > 0);
        assert!(default_capacity(ElementKind::Arm).get(ResourceKind::Io) > 0);
    }
}
