//! # kairos-platform
//!
//! Heterogeneous MPSoC platform model for the Kairos run-time spatial
//! resource manager — a faithful software substrate for the platform side of
//! *ter Braak et al., "Run-time Spatial Resource Management for Real-Time
//! Applications on Heterogeneous MPSoCs" (DATE 2010)*.
//!
//! A platform `P = <E, L>` consists of processing [`Element`]s connected by
//! directed NoC [`Link`]s with virtual-channel reservation. Elements provide
//! vector-valued resources ([`ResourceVector`]); the crate keeps a run-time
//! ledger of claims (tasks residing on elements, channels occupying links),
//! supports O(|E|+|L|) checkpoint/rollback for failed allocation attempts,
//! fault injection for dependability experiments, and the *external resource
//! fragmentation* metric of §III-A.
//!
//! The CRISP General Stream Processor used in the paper's evaluation (ARM +
//! FPGA + 5 packages of 9 DSPs, 2 memories and a test unit — Fig. 6) is
//! available as [`topology::crisp`].
//!
//! For sharded deployments, [`RegionMap`] partitions a platform into
//! disjoint contiguous regions balanced by resource capacity and extracts
//! each region as a standalone platform (the substrate of the
//! `kairos-cluster` shard managers).
//!
//! ## Example
//!
//! ```
//! use kairos_platform::{topology, AppId, Occupant, ResourceVector, external_fragmentation};
//!
//! let mut platform = topology::crisp();
//! let dsp = platform.elements_of_kind(kairos_platform::ElementKind::Dsp).next().unwrap().id();
//!
//! // Claim most of a DSP for task 0 of application 0:
//! let claim = ResourceVector::new(700, 32, 0, 0);
//! platform.claim(dsp, Occupant { app: AppId(0), task: 0, claimed: claim })?;
//! assert!(external_fragmentation(&platform) > 0.0);
//!
//! // Roll it back:
//! platform.release(dsp, AppId(0), 0);
//! assert!(platform.is_idle());
//! # Ok::<(), kairos_platform::ClaimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod distance;
mod element;
mod frag;
mod link;
mod platform;
mod power;
mod region;
mod render;
mod resource;
pub mod topology;

pub use builder::PlatformBuilder;
pub use distance::{bfs_distances, hop_distance, SearchDirection, SparseDistanceMatrix};
pub use element::{Element, ElementId, ElementKind};
pub use frag::{adjacent_pairs, element_utilisation, external_fragmentation, free_island_count};
pub use link::{Link, LinkId};
pub use platform::{AppId, ClaimError, Occupant, Platform, PlatformCheckpoint};
pub use power::{PowerModel, PowerRate};
pub use region::RegionMap;
pub use render::{render_link_load, render_occupancy, render_strip};
pub use resource::{ResourceKind, ResourceVector, RESOURCE_KIND_COUNT};

/// Compile-time thread-safety pin (sharded deployments move platforms and
/// probe them from scoped threads; a field change that silently dropped
/// `Send`/`Sync` would regress `kairos-cluster`'s parallel probes).
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Platform>();
const _: () = _assert_send_sync::<RegionMap>();
const _: () = _assert_send_sync::<PlatformCheckpoint>();
