//! Processing elements — the nodes `E` of the platform graph `P = <E, L>`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::resource::ResourceVector;

/// Identifier of a processing element within one [`Platform`](crate::Platform).
///
/// Ids are dense indices assigned by the [`PlatformBuilder`](crate::PlatformBuilder)
/// in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub u32);

impl ElementId {
    /// The dense index of this element.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The architectural class of a processing element.
///
/// Task implementations target exactly one kind; the binding phase only
/// considers elements of the matching kind. The set mirrors the CRISP
/// platform of the paper (Fig. 6): an ARM host, an FPGA, packages of DSPs,
/// on-chip memories and hardware test units, plus explicit I/O interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// General-purpose host processor (ARM926 in CRISP).
    Arm,
    /// Xentium-like streaming DSP core.
    Dsp,
    /// Reconfigurable fabric.
    Fpga,
    /// On-chip memory tile.
    Memory,
    /// Dependability/hardware test unit.
    TestUnit,
    /// Dedicated I/O interface (ADC/DAC, network port).
    Io,
}

impl ElementKind {
    /// All element kinds.
    pub const ALL: [ElementKind; 6] = [
        ElementKind::Arm,
        ElementKind::Dsp,
        ElementKind::Fpga,
        ElementKind::Memory,
        ElementKind::TestUnit,
        ElementKind::Io,
    ];

    /// Short label used in names and `Display` output.
    pub const fn label(self) -> &'static str {
        match self {
            ElementKind::Arm => "arm",
            ElementKind::Dsp => "dsp",
            ElementKind::Fpga => "fpga",
            ElementKind::Memory => "mem",
            ElementKind::TestUnit => "tst",
            ElementKind::Io => "io",
        }
    }
}

impl fmt::Display for ElementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Static description of one processing element.
///
/// The *dynamic* state (free resources, residing tasks, failure status) lives
/// in the [`Platform`](crate::Platform) so that elements stay cheap immutable
/// records and platform state can be checkpointed wholesale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    id: ElementId,
    kind: ElementKind,
    name: String,
    capacity: ResourceVector,
}

impl Element {
    pub(crate) fn new(
        id: ElementId,
        kind: ElementKind,
        name: String,
        capacity: ResourceVector,
    ) -> Self {
        Element { id, kind, name, capacity }
    }

    /// This element's identifier.
    #[inline]
    pub fn id(&self) -> ElementId {
        self.id
    }

    /// The architectural class of the element.
    #[inline]
    pub fn kind(&self) -> ElementKind {
        self.kind
    }

    /// Human-readable name (e.g. `pkg2/dsp4`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total resources provided when the element is idle.
    #[inline]
    pub fn capacity(&self) -> ResourceVector {
        self.capacity
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.kind, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_accessors() {
        let e = Element::new(
            ElementId(3),
            ElementKind::Dsp,
            "pkg0/dsp3".to_string(),
            ResourceVector::new(1000, 64, 0, 0),
        );
        assert_eq!(e.id(), ElementId(3));
        assert_eq!(e.id().index(), 3);
        assert_eq!(e.kind(), ElementKind::Dsp);
        assert_eq!(e.name(), "pkg0/dsp3");
        assert_eq!(e.capacity().get(crate::ResourceKind::Compute), 1000);
    }

    #[test]
    fn display_contains_name_and_kind() {
        let e = Element::new(
            ElementId(0),
            ElementKind::Fpga,
            "fpga0".to_string(),
            ResourceVector::ZERO,
        );
        let s = e.to_string();
        assert!(s.contains("fpga0") && s.contains("fpga"));
        assert_eq!(ElementId(7).to_string(), "e7");
    }

    #[test]
    fn kinds_have_unique_labels() {
        let mut labels: Vec<_> = ElementKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ElementKind::ALL.len());
    }
}
