//! Vector-valued resources, after the vector notation of Hölzenspies et al.
//!
//! Every processing element *provides* a [`ResourceVector`] and every task
//! implementation *requires* one. The mapping phase only ever compares, adds
//! and subtracts these vectors component-wise, so the whole resource model of
//! the paper reduces to a small fixed-arity algebra.

use std::fmt;
use std::ops::{Add, AddAssign, Index, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of distinct resource kinds tracked per element.
pub const RESOURCE_KIND_COUNT: usize = 4;

/// The kinds of resources a processing element can provide.
///
/// The concrete set follows the CRISP platform of the paper: computation
/// capacity (DSP/GPP cycles), local memory, reconfigurable area (FPGA) and
/// I/O interface slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Computation capacity, in abstract cycle-budget units.
    Compute,
    /// Local memory, in KiB.
    Memory,
    /// Reconfigurable logic area, in abstract LUT units.
    Area,
    /// I/O interface slots (stream endpoints).
    Io,
}

impl ResourceKind {
    /// All resource kinds, in vector-index order.
    pub const ALL: [ResourceKind; RESOURCE_KIND_COUNT] =
        [ResourceKind::Compute, ResourceKind::Memory, ResourceKind::Area, ResourceKind::Io];

    /// The index of this kind within a [`ResourceVector`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Compute => 0,
            ResourceKind::Memory => 1,
            ResourceKind::Area => 2,
            ResourceKind::Io => 3,
        }
    }

    /// Short human-readable label used by `Display` impls.
    pub const fn label(self) -> &'static str {
        match self {
            ResourceKind::Compute => "cpu",
            ResourceKind::Memory => "mem",
            ResourceKind::Area => "area",
            ResourceKind::Io => "io",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fixed-arity vector of resource quantities.
///
/// `ResourceVector` is `Copy` and cheap; all operations are component-wise.
/// Subtraction that would underflow is only available through
/// [`ResourceVector::checked_sub`], keeping the "free resources" ledgers of a
/// platform free of silent wrap-arounds.
///
/// # Examples
///
/// ```
/// use kairos_platform::{ResourceKind, ResourceVector};
///
/// let capacity = ResourceVector::new(1000, 64, 0, 2);
/// let demand = ResourceVector::with(ResourceKind::Compute, 700);
/// assert!(capacity.fits(&demand));
/// let free = capacity.checked_sub(&demand).unwrap();
/// assert_eq!(free[ResourceKind::Compute], 300);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ResourceVector([u64; RESOURCE_KIND_COUNT]);

impl ResourceVector {
    /// The all-zero vector.
    pub const ZERO: ResourceVector = ResourceVector([0; RESOURCE_KIND_COUNT]);

    /// Creates a vector from explicit components, in [`ResourceKind::ALL`] order.
    #[inline]
    pub const fn new(compute: u64, memory: u64, area: u64, io: u64) -> Self {
        ResourceVector([compute, memory, area, io])
    }

    /// Creates a vector that is zero except for a single `kind`.
    #[inline]
    pub fn with(kind: ResourceKind, amount: u64) -> Self {
        let mut v = Self::ZERO;
        v.0[kind.index()] = amount;
        v
    }

    /// Creates a vector with the same `amount` in every component.
    #[inline]
    pub const fn splat(amount: u64) -> Self {
        ResourceVector([amount; RESOURCE_KIND_COUNT])
    }

    /// Returns the quantity of `kind` in this vector.
    #[inline]
    pub fn get(&self, kind: ResourceKind) -> u64 {
        self.0[kind.index()]
    }

    /// Sets the quantity of `kind`, returning the previous value.
    #[inline]
    pub fn set(&mut self, kind: ResourceKind, amount: u64) -> u64 {
        std::mem::replace(&mut self.0[kind.index()], amount)
    }

    /// Returns `true` when every component of `demand` fits within `self`.
    ///
    /// This is the availability test `av(e, t)` of the paper restricted to
    /// quantities; kind-compatibility is checked by the binding phase.
    #[inline]
    pub fn fits(&self, demand: &ResourceVector) -> bool {
        self.0.iter().zip(demand.0.iter()).all(|(have, need)| have >= need)
    }

    /// Component-wise subtraction; `None` when any component would underflow.
    #[inline]
    pub fn checked_sub(&self, rhs: &ResourceVector) -> Option<ResourceVector> {
        let mut out = [0u64; RESOURCE_KIND_COUNT];
        for (slot, (have, need)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *slot = have.checked_sub(*need)?;
        }
        Some(ResourceVector(out))
    }

    /// Component-wise saturating subtraction.
    #[inline]
    pub fn saturating_sub(&self, rhs: &ResourceVector) -> ResourceVector {
        ResourceVector(std::array::from_fn(|i| self.0[i].saturating_sub(rhs.0[i])))
    }

    /// Component-wise saturating addition.
    #[inline]
    pub fn saturating_add(&self, rhs: &ResourceVector) -> ResourceVector {
        ResourceVector(std::array::from_fn(|i| self.0[i].saturating_add(rhs.0[i])))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn component_min(&self, rhs: &ResourceVector) -> ResourceVector {
        ResourceVector(std::array::from_fn(|i| self.0[i].min(rhs.0[i])))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn component_max(&self, rhs: &ResourceVector) -> ResourceVector {
        ResourceVector(std::array::from_fn(|i| self.0[i].max(rhs.0[i])))
    }

    /// Returns `true` if all components are zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Sum of all components — a crude scalar "size" used by knapsack
    /// tie-breaking and greedy value/size ratios.
    #[inline]
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Scales every component by `num/den`, rounding down.
    ///
    /// Used by the workload generator to express demands as a fraction of an
    /// element capacity.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn scaled(&self, num: u64, den: u64) -> ResourceVector {
        assert!(den != 0, "scale denominator must be non-zero");
        ResourceVector(std::array::from_fn(|i| self.0[i].saturating_mul(num) / den))
    }

    /// The utilisation of `self` relative to `capacity`, as the maximum
    /// component-wise ratio in `[0, 1]`. Components with zero capacity are
    /// ignored.
    pub fn utilisation_of(&self, capacity: &ResourceVector) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..RESOURCE_KIND_COUNT {
            if capacity.0[i] > 0 {
                worst = worst.max(self.0[i] as f64 / capacity.0[i] as f64);
            }
        }
        worst
    }

    /// Iterates over `(kind, amount)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, u64)> + '_ {
        ResourceKind::ALL.iter().map(move |&k| (k, self.0[k.index()]))
    }

    /// Raw component view, in [`ResourceKind::ALL`] order.
    #[inline]
    pub fn as_array(&self) -> &[u64; RESOURCE_KIND_COUNT] {
        &self.0
    }
}

impl From<[u64; RESOURCE_KIND_COUNT]> for ResourceVector {
    fn from(raw: [u64; RESOURCE_KIND_COUNT]) -> Self {
        ResourceVector(raw)
    }
}

impl Index<ResourceKind> for ResourceVector {
    type Output = u64;

    fn index(&self, kind: ResourceKind) -> &u64 {
        &self.0[kind.index()]
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;

    fn add(self, rhs: ResourceVector) -> ResourceVector {
        self.saturating_add(&rhs)
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = self.saturating_add(&rhs);
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;

    /// Component-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on underflow; use [`ResourceVector::checked_sub`] in ledgers.
    fn sub(self, rhs: ResourceVector) -> ResourceVector {
        self.checked_sub(&rhs).expect("resource vector subtraction underflowed")
    }
}

impl SubAssign for ResourceVector {
    fn sub_assign(&mut self, rhs: ResourceVector) {
        *self = *self - rhs;
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (kind, amount)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{kind}:{amount}")?;
        }
        write!(f, "]")
    }
}

impl std::iter::Sum for ResourceVector {
    fn sum<I: Iterator<Item = ResourceVector>>(iter: I) -> ResourceVector {
        iter.fold(ResourceVector::ZERO, |acc, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_get_roundtrip() {
        let v = ResourceVector::new(1, 2, 3, 4);
        assert_eq!(v.get(ResourceKind::Compute), 1);
        assert_eq!(v.get(ResourceKind::Memory), 2);
        assert_eq!(v.get(ResourceKind::Area), 3);
        assert_eq!(v.get(ResourceKind::Io), 4);
    }

    #[test]
    fn with_sets_single_component() {
        let v = ResourceVector::with(ResourceKind::Memory, 42);
        assert_eq!(v, ResourceVector::new(0, 42, 0, 0));
    }

    #[test]
    fn fits_is_componentwise() {
        let cap = ResourceVector::new(10, 10, 0, 0);
        assert!(cap.fits(&ResourceVector::new(10, 10, 0, 0)));
        assert!(cap.fits(&ResourceVector::ZERO));
        assert!(!cap.fits(&ResourceVector::new(11, 0, 0, 0)));
        assert!(!cap.fits(&ResourceVector::new(0, 0, 1, 0)));
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        let a = ResourceVector::new(5, 5, 5, 5);
        let b = ResourceVector::new(6, 0, 0, 0);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(a.checked_sub(&ResourceVector::splat(5)), Some(ResourceVector::ZERO));
    }

    #[test]
    fn saturating_ops_clamp() {
        let a = ResourceVector::new(1, 2, 3, 4);
        assert_eq!(a.saturating_sub(&ResourceVector::splat(10)), ResourceVector::ZERO);
        let b = ResourceVector::splat(u64::MAX);
        assert_eq!(b.saturating_add(&a), b);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = ResourceVector::new(7, 8, 9, 10);
        let b = ResourceVector::new(1, 2, 3, 4);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn sub_panics_on_underflow() {
        let _ = ResourceVector::ZERO - ResourceVector::splat(1);
    }

    #[test]
    fn scaled_rounds_down() {
        let v = ResourceVector::new(10, 5, 0, 1);
        assert_eq!(v.scaled(50, 100), ResourceVector::new(5, 2, 0, 0));
        assert_eq!(v.scaled(100, 100), v);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn scaled_panics_on_zero_denominator() {
        let _ = ResourceVector::splat(1).scaled(1, 0);
    }

    #[test]
    fn utilisation_ignores_zero_capacity() {
        let cap = ResourceVector::new(100, 0, 0, 0);
        let use_ = ResourceVector::new(70, 999, 0, 0);
        assert!((use_.utilisation_of(&cap) - 0.7).abs() < 1e-12);
        assert_eq!(ResourceVector::ZERO.utilisation_of(&ResourceVector::ZERO), 0.0);
    }

    #[test]
    fn total_and_is_zero() {
        assert!(ResourceVector::ZERO.is_zero());
        assert_eq!(ResourceVector::new(1, 2, 3, 4).total(), 10);
        assert!(!ResourceVector::new(0, 0, 0, 1).is_zero());
    }

    #[test]
    fn min_max_componentwise() {
        let a = ResourceVector::new(1, 9, 3, 7);
        let b = ResourceVector::new(4, 2, 8, 7);
        assert_eq!(a.component_min(&b), ResourceVector::new(1, 2, 3, 7));
        assert_eq!(a.component_max(&b), ResourceVector::new(4, 9, 8, 7));
    }

    #[test]
    fn display_is_nonempty_and_labelled() {
        let s = ResourceVector::new(1, 2, 3, 4).to_string();
        assert!(s.contains("cpu:1") && s.contains("mem:2") && s.contains("io:4"));
    }

    #[test]
    fn sum_folds_vectors() {
        let total: ResourceVector =
            vec![ResourceVector::splat(1), ResourceVector::splat(2)].into_iter().sum();
        assert_eq!(total, ResourceVector::splat(3));
    }

    #[test]
    fn kind_indices_are_dense_and_unique() {
        let mut seen = [false; RESOURCE_KIND_COUNT];
        for kind in ResourceKind::ALL {
            assert!(!seen[kind.index()]);
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
