//! Region views: partitioning a platform into disjoint, contiguous
//! element groups.
//!
//! Sharded deployments of the resource manager split the fabric into
//! regions that are managed semi-independently, the way hybrid
//! design-time/run-time methodologies pre-partition a platform so
//! run-time decisions stay local and fast. A [`RegionMap`] is such a
//! partition: every element belongs to exactly one region, regions are
//! grown contiguously along the platform's links, and region capacities
//! are balanced so no shard manager inherits a disproportionate share of
//! the fabric.
//!
//! [`RegionMap::extract`] materialises one region as a standalone
//! [`Platform`] (elements keep their kinds, names and capacities;
//! intra-region links keep their bandwidth and virtual channels; links
//! crossing a region boundary are dropped), and the id-translation
//! accessors ([`RegionMap::to_local`], [`RegionMap::to_global`],
//! [`RegionMap::region_of`]) convert between the global id space and a
//! region's local one.

use crate::builder::PlatformBuilder;
use crate::element::ElementId;
use crate::platform::Platform;

/// A partition of a platform's elements into disjoint contiguous regions.
///
/// Built by [`RegionMap::new`], which grows each region along the
/// platform's links, balancing the summed resource capacity of the
/// regions. A single-region map is the identity partition: element order
/// and ids are preserved exactly, so a shard extracted from it behaves
/// byte-identically to the original platform.
///
/// # Examples
///
/// ```
/// use kairos_platform::{topology, RegionMap};
///
/// let platform = topology::crisp();
/// let map = RegionMap::new(&platform, 4).unwrap();
/// assert_eq!(map.region_count(), 4);
/// let total: usize = (0..4).map(|r| map.elements(r).len()).sum();
/// assert_eq!(total, platform.element_count());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    /// Global element ids per region, each sorted ascending.
    regions: Vec<Vec<ElementId>>,
    /// `(region, local index)` per global element id.
    home: Vec<(u32, u32)>,
}

impl RegionMap {
    /// Partitions `platform` into `regions` disjoint contiguous element
    /// groups balanced by summed resource capacity.
    ///
    /// The partitioner is deterministic: each region is seeded at the
    /// smallest unassigned element id and grown by repeatedly annexing
    /// the unassigned neighbor with the most links into the region so
    /// far (ties broken by id), until the region's capacity reaches its
    /// proportional share of what remains. Elements unreachable from any
    /// seed (a disconnected platform) are swept into the last region.
    ///
    /// # Errors
    ///
    /// When `regions` is zero or exceeds the element count.
    pub fn new(platform: &Platform, regions: usize) -> Result<RegionMap, String> {
        let n = platform.element_count();
        if regions == 0 {
            return Err("a region map needs at least one region".into());
        }
        if regions > n {
            return Err(format!("cannot split {n} elements into {regions} regions"));
        }
        let weight = |e: ElementId| -> u64 {
            platform.element(e).capacity().as_array().iter().sum::<u64>().max(1)
        };
        let mut unassigned: Vec<bool> = vec![true; n];
        let mut left = n;
        let mut remaining_weight: u64 = platform.element_ids().map(weight).sum();
        let mut out: Vec<Vec<ElementId>> = Vec::with_capacity(regions);

        for r in 0..regions {
            let reserve = regions - r - 1; // later regions need one element each
            let target = remaining_weight / (regions - r) as u64;
            let seed = platform
                .element_ids()
                .find(|e| unassigned[e.index()])
                .expect("regions <= elements guarantees a seed");
            unassigned[seed.index()] = false;
            left -= 1;
            let mut members = vec![seed];
            let mut grown = weight(seed);
            let mut in_region = vec![false; n];
            in_region[seed.index()] = true;

            while grown < target && left > reserve {
                // The frontier: unassigned neighbors of the region, scored
                // by how many links they already share with it.
                let mut best: Option<(usize, ElementId)> = None;
                for &m in &members {
                    for nb in platform.neighbors(m) {
                        if !unassigned[nb.index()] || in_region[nb.index()] {
                            continue;
                        }
                        let ties =
                            platform.neighbors(nb).iter().filter(|x| in_region[x.index()]).count();
                        let better = match best {
                            None => true,
                            Some((bt, be)) => ties > bt || (ties == bt && nb < be),
                        };
                        if better {
                            best = Some((ties, nb));
                        }
                    }
                }
                let Some((_, next)) = best else { break }; // frontier exhausted
                unassigned[next.index()] = false;
                in_region[next.index()] = true;
                left -= 1;
                grown += weight(next);
                members.push(next);
            }
            remaining_weight = remaining_weight.saturating_sub(grown);
            out.push(members);
        }

        // A region's growth can wall off part of the graph before later
        // seeds reach it. Leftovers join an adjacent region (which keeps
        // every region contiguous); only elements disconnected from all
        // regions fall to the last one.
        let mut region_of = vec![usize::MAX; n];
        for (r, members) in out.iter().enumerate() {
            for &e in members {
                region_of[e.index()] = r;
            }
        }
        while left > 0 {
            let mut absorbed = false;
            for e in platform.element_ids() {
                if !unassigned[e.index()] {
                    continue;
                }
                let Some(nb) = platform
                    .neighbors(e)
                    .into_iter()
                    .find(|nb| region_of[nb.index()] != usize::MAX)
                else {
                    continue;
                };
                let r = region_of[nb.index()];
                region_of[e.index()] = r;
                out[r].push(e);
                unassigned[e.index()] = false;
                left -= 1;
                absorbed = true;
            }
            if !absorbed {
                // What remains is disconnected from every region.
                for e in platform.element_ids() {
                    if unassigned[e.index()] {
                        out.last_mut().expect("at least one region").push(e);
                    }
                }
                break;
            }
        }
        for members in &mut out {
            members.sort_unstable();
        }

        let mut home = vec![(0u32, 0u32); n];
        for (r, members) in out.iter().enumerate() {
            for (local, e) in members.iter().enumerate() {
                home[e.index()] = (r as u32, local as u32);
            }
        }
        Ok(RegionMap { regions: out, home })
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Global element ids of `region`, ascending.
    ///
    /// # Panics
    ///
    /// Panics when `region` is out of range.
    pub fn elements(&self, region: usize) -> &[ElementId] {
        &self.regions[region]
    }

    /// The region owning global element `e`.
    ///
    /// # Panics
    ///
    /// Panics when `e` does not belong to the partitioned platform.
    pub fn region_of(&self, e: ElementId) -> usize {
        self.home[e.index()].0 as usize
    }

    /// The local id of global element `e` inside its region's extracted
    /// platform.
    ///
    /// # Panics
    ///
    /// Panics when `e` does not belong to the partitioned platform.
    pub fn to_local(&self, e: ElementId) -> ElementId {
        ElementId(self.home[e.index()].1)
    }

    /// The global id of `local` inside `region`.
    ///
    /// # Panics
    ///
    /// Panics when `region` or `local` is out of range.
    pub fn to_global(&self, region: usize, local: ElementId) -> ElementId {
        self.regions[region][local.index()]
    }

    /// Directed links of `platform` whose endpoints live in different
    /// regions — the connectivity a sharded deployment gives up.
    pub fn cross_region_links(&self, platform: &Platform) -> usize {
        platform.links().filter(|l| self.region_of(l.src()) != self.region_of(l.dst())).count()
    }

    /// Materialises `region` as a standalone platform: its elements (in
    /// local id order, keeping kind, name and capacity) plus every link
    /// of the original platform with both endpoints inside the region
    /// (in original link order, keeping bandwidth and virtual channels).
    ///
    /// # Panics
    ///
    /// Panics when `region` is out of range or `platform` is not the
    /// platform this map partitioned.
    pub fn extract(&self, platform: &Platform, region: usize) -> Platform {
        let members = &self.regions[region];
        let mut b = PlatformBuilder::new(format!("{}/shard{region}", platform.name()));
        for &e in members {
            let element = platform.element(e);
            b.add_named_element(element.kind(), element.name().to_owned(), element.capacity());
        }
        for link in platform.links() {
            let (src, dst) = (link.src(), link.dst());
            if self.region_of(src) == region && self.region_of(dst) == region {
                b.connect_directed(
                    self.to_local(src),
                    self.to_local(dst),
                    link.bandwidth(),
                    link.virtual_channels(),
                );
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementKind;
    use crate::resource::ResourceVector;
    use crate::topology;

    /// Every element of `map`'s region `r` reaches every other member
    /// without leaving the region.
    fn region_is_contiguous(platform: &Platform, map: &RegionMap, r: usize) -> bool {
        let members = map.elements(r);
        let mut seen = vec![false; platform.element_count()];
        let mut stack = vec![members[0]];
        seen[members[0].index()] = true;
        let mut reached = 1;
        while let Some(e) = stack.pop() {
            for nb in platform.neighbors(e) {
                if map.region_of(nb) == r && !seen[nb.index()] {
                    seen[nb.index()] = true;
                    reached += 1;
                    stack.push(nb);
                }
            }
        }
        reached == members.len()
    }

    #[test]
    fn single_region_is_the_identity_partition() {
        let p = topology::crisp();
        let map = RegionMap::new(&p, 1).unwrap();
        assert_eq!(map.region_count(), 1);
        let members = map.elements(0);
        assert_eq!(members.len(), p.element_count());
        for e in p.element_ids() {
            assert_eq!(map.region_of(e), 0);
            assert_eq!(map.to_local(e), e, "identity partition preserves ids");
            assert_eq!(map.to_global(0, e), e);
        }
        assert_eq!(map.cross_region_links(&p), 0);
        let sub = map.extract(&p, 0);
        assert_eq!(sub.element_count(), p.element_count());
        assert_eq!(sub.link_count(), p.link_count());
        for e in p.element_ids() {
            assert_eq!(sub.element(e).kind(), p.element(e).kind());
            assert_eq!(sub.element(e).name(), p.element(e).name());
            assert_eq!(sub.element(e).capacity(), p.element(e).capacity());
        }
    }

    #[test]
    fn partition_is_disjoint_total_and_contiguous() {
        for shards in [2usize, 3, 4, 5] {
            let p = topology::crisp();
            let map = RegionMap::new(&p, shards).unwrap();
            let mut owned = vec![0u32; p.element_count()];
            for r in 0..shards {
                assert!(!map.elements(r).is_empty(), "region {r} of {shards} is empty");
                for &e in map.elements(r) {
                    owned[e.index()] += 1;
                }
                assert!(region_is_contiguous(&p, &map, r), "region {r} of {shards} is split");
            }
            assert!(owned.iter().all(|&c| c == 1), "every element in exactly one region");
        }
    }

    #[test]
    fn partition_balances_capacity() {
        let p = topology::dsp_mesh(6, 6);
        let map = RegionMap::new(&p, 4).unwrap();
        let weights: Vec<u64> = (0..4)
            .map(|r| {
                map.elements(r)
                    .iter()
                    .map(|&e| p.element(e).capacity().as_array().iter().sum::<u64>())
                    .sum()
            })
            .collect();
        let (min, max) = (weights.iter().min().unwrap(), weights.iter().max().unwrap());
        // A homogeneous mesh splits 4 ways within one element's weight of
        // perfect balance.
        let unit: u64 = p.element(ElementId(0)).capacity().as_array().iter().sum();
        assert!(max - min <= unit, "imbalance {} exceeds one element ({unit})", max - min);
    }

    #[test]
    fn extract_translates_links_and_ids() {
        let p = topology::dsp_mesh(4, 2);
        let map = RegionMap::new(&p, 2).unwrap();
        for r in 0..2 {
            let sub = map.extract(&p, r);
            assert_eq!(sub.element_count(), map.elements(r).len());
            // Every intra-region adjacency survives with its capacity.
            for &e in map.elements(r) {
                for nb in p.neighbors(e) {
                    if map.region_of(nb) != r {
                        continue;
                    }
                    let l = p.link_between(e, nb).unwrap();
                    let local =
                        sub.link_between(map.to_local(e), map.to_local(nb)).expect("link kept");
                    assert_eq!(sub.link(local).bandwidth(), p.link(l).bandwidth());
                    assert_eq!(sub.link(local).virtual_channels(), p.link(l).virtual_channels());
                }
            }
        }
        let total_links: usize = (0..2).map(|r| map.extract(&p, r).link_count()).sum();
        assert_eq!(total_links + map.cross_region_links(&p), p.link_count());
    }

    #[test]
    fn round_trip_of_local_and_global_ids() {
        let p = topology::heterogeneous_mesh(4, 4);
        let map = RegionMap::new(&p, 3).unwrap();
        for e in p.element_ids() {
            let r = map.region_of(e);
            assert_eq!(map.to_global(r, map.to_local(e)), e);
        }
    }

    #[test]
    fn degenerate_region_counts_are_refused() {
        let p = topology::dsp_line(3);
        assert!(RegionMap::new(&p, 0).is_err());
        assert!(RegionMap::new(&p, 4).is_err());
        // One region per element is the finest legal partition.
        let map = RegionMap::new(&p, 3).unwrap();
        assert!((0..3).all(|r| map.elements(r).len() == 1));
    }

    #[test]
    fn disconnected_elements_fall_to_the_last_region() {
        let mut b = PlatformBuilder::new("islands");
        let a = b.add_element(ElementKind::Dsp, ResourceVector::splat(10));
        let c = b.add_element(ElementKind::Dsp, ResourceVector::splat(10));
        b.connect(a, c, 100, 2);
        let lone = b.add_element(ElementKind::Dsp, ResourceVector::splat(10));
        let p = b.build();
        let map = RegionMap::new(&p, 2).unwrap();
        let total: usize = (0..2).map(|r| map.elements(r).len()).sum();
        assert_eq!(total, 3);
        assert_eq!(map.region_of(lone), 1, "unreachable elements land in the last region");
    }
}
