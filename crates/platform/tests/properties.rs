//! Property-based tests of the platform substrate: resource-vector algebra,
//! ledger conservation, checkpoint/rollback and distance symmetry.

use proptest::prelude::*;

use kairos_platform::{
    bfs_distances, external_fragmentation, topology, AppId, ElementKind, Occupant, PlatformBuilder,
    ResourceVector, SearchDirection,
};

fn vector() -> impl Strategy<Value = ResourceVector> {
    (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000)
        .prop_map(|(a, b, c, d)| ResourceVector::new(a, b, c, d))
}

proptest! {
    #[test]
    fn add_is_commutative_and_monotone(a in vector(), b in vector()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert!((a + b).fits(&a));
        prop_assert!((a + b).fits(&b));
    }

    #[test]
    fn add_then_sub_roundtrips(a in vector(), b in vector()) {
        prop_assert_eq!((a + b).checked_sub(&b), Some(a));
    }

    #[test]
    fn fits_is_a_partial_order(a in vector(), b in vector(), c in vector()) {
        // reflexive
        prop_assert!(a.fits(&a));
        // transitive
        if a.fits(&b) && b.fits(&c) {
            prop_assert!(a.fits(&c));
        }
        // antisymmetric
        if a.fits(&b) && b.fits(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn checked_sub_agrees_with_fits(a in vector(), b in vector()) {
        prop_assert_eq!(a.checked_sub(&b).is_some(), a.fits(&b));
    }

    #[test]
    fn component_min_max_bound(a in vector(), b in vector()) {
        let lo = a.component_min(&b);
        let hi = a.component_max(&b);
        prop_assert!(a.fits(&lo) && b.fits(&lo));
        prop_assert!(hi.fits(&a) && hi.fits(&b));
        prop_assert_eq!(lo + hi, a + b);
    }

    #[test]
    fn scaled_is_monotone_in_numerator(v in vector(), num in 0u64..100) {
        let smaller = v.scaled(num, 100);
        let larger = v.scaled(num + 1, 100);
        prop_assert!(larger.fits(&smaller));
        prop_assert!(v.fits(&smaller));
    }

    #[test]
    fn utilisation_is_bounded(v in vector(), cap in vector()) {
        let u = v.component_min(&cap).utilisation_of(&cap);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Claim/release sequences conserve resources exactly.
    #[test]
    fn ledger_conservation(ops in proptest::collection::vec((0u32..16, 0u64..800), 1..40)) {
        let mut platform = topology::dsp_mesh(4, 4);
        let initial = platform.total_free();
        let mut live: Vec<(kairos_platform::ElementId, u32)> = Vec::new();
        for (i, (elem_raw, amount)) in ops.iter().enumerate() {
            let e = kairos_platform::ElementId(*elem_raw);
            let claim = ResourceVector::new(*amount, 0, 0, 0);
            let occupant = Occupant { app: AppId(0), task: i as u32, claimed: claim };
            if platform.claim(e, occupant).is_ok() {
                live.push((e, i as u32));
            }
        }
        // Free + sum(claimed) == capacity at all times.
        let claimed: ResourceVector = platform
            .element_ids()
            .flat_map(|e| platform.residents(e).to_vec())
            .map(|o| o.claimed)
            .sum();
        prop_assert_eq!(platform.total_free() + claimed, initial);
        // Releasing everything restores the initial state.
        for (e, task) in live {
            prop_assert!(platform.release(e, AppId(0), task).is_some());
        }
        prop_assert!(platform.is_idle());
    }

    /// Checkpoint/restore is an exact inverse of arbitrary mutations.
    #[test]
    fn checkpoint_restore_is_exact(
        claims in proptest::collection::vec((0u32..16, 1u64..500), 0..20),
        fails in proptest::collection::vec(0u32..16, 0..5),
    ) {
        let mut platform = topology::dsp_mesh(4, 4);
        // Pre-populate some state so the checkpoint is non-trivial.
        platform
            .claim(
                kairos_platform::ElementId(3),
                Occupant { app: AppId(9), task: 0, claimed: ResourceVector::new(100, 0, 0, 0) },
            )
            .unwrap();
        let checkpoint = platform.checkpoint();
        let reference = platform.clone();
        for (i, (e, amount)) in claims.iter().enumerate() {
            let _ = platform.claim(
                kairos_platform::ElementId(*e),
                Occupant { app: AppId(1), task: i as u32, claimed: ResourceVector::new(*amount, 0, 0, 0) },
            );
        }
        for e in &fails {
            platform.fail_element(kairos_platform::ElementId(*e));
        }
        platform.restore(checkpoint);
        prop_assert_eq!(platform, reference);
    }

    /// Hop distances are symmetric on bidirectionally-connected topologies.
    #[test]
    fn distances_symmetric_on_bidirectional_platforms(w in 2usize..5, h in 2usize..5) {
        let platform = topology::dsp_mesh(w, h);
        for a in platform.element_ids() {
            let from_a = bfs_distances(&platform, a, SearchDirection::Forward);
            for b in platform.element_ids() {
                let from_b = bfs_distances(&platform, b, SearchDirection::Forward);
                prop_assert_eq!(from_a[b.index()], from_b[a.index()]);
            }
        }
    }

    /// Fragmentation is always within [0, 1] and zero on idle platforms.
    #[test]
    fn fragmentation_bounds(claims in proptest::collection::vec(0u32..36, 0..20)) {
        let mut platform = topology::dsp_mesh(6, 6);
        prop_assert_eq!(external_fragmentation(&platform), 0.0);
        for (i, e) in claims.iter().enumerate() {
            let _ = platform.claim(
                kairos_platform::ElementId(*e),
                Occupant { app: AppId(0), task: i as u32, claimed: ResourceVector::new(1, 0, 0, 0) },
            );
        }
        let f = external_fragmentation(&platform);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Builder-constructed platforms always have consistent adjacency.
    #[test]
    fn adjacency_is_consistent(edges in proptest::collection::vec((0u32..10, 0u32..10), 0..30)) {
        let mut b = PlatformBuilder::new("prop");
        for _ in 0..10 {
            b.add_element(ElementKind::Dsp, ResourceVector::splat(10));
        }
        for (x, y) in edges {
            if x != y {
                b.connect_directed(
                    kairos_platform::ElementId(x),
                    kairos_platform::ElementId(y),
                    100,
                    2,
                );
            }
        }
        let p = b.build();
        let mut successor_pairs = 0;
        let mut predecessor_pairs = 0;
        for e in p.element_ids() {
            successor_pairs += p.successors(e).len();
            predecessor_pairs += p.predecessors(e).len();
            for &(n, l) in p.successors(e) {
                prop_assert_eq!(p.link(l).src(), e);
                prop_assert_eq!(p.link(l).dst(), n);
            }
        }
        prop_assert_eq!(successor_pairs, p.link_count());
        prop_assert_eq!(predecessor_pairs, p.link_count());
    }
}
