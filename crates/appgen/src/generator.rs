//! The TGFF-like synthetic application generator.
//!
//! Produces layered stream graphs: input tasks (pinned to the FPGA front-end
//! by their single implementation), internal processing tasks (DSP with
//! occasional ARM alternatives), and output tasks (pinned to the ARM host).
//! Channels flow strictly from earlier to later layers, bounded by the
//! configured in/out-degrees, so generated graphs are acyclic streaming
//! pipelines like the paper's.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kairos_app::{Application, ApplicationBuilder, Implementation, TaskId, TaskRole};
use kairos_platform::topology::default_capacity;
use kairos_platform::ElementKind;

use crate::config::GeneratorConfig;

/// Seeded generator of synthetic applications.
///
/// # Examples
///
/// ```
/// use kairos_appgen::{AppGenerator, GeneratorConfig};
///
/// let mut generator = AppGenerator::new(GeneratorConfig::default(), 42);
/// let app = generator.generate("demo");
/// assert!(app.task_count() >= 4);
/// // Same seed, same sequence:
/// let mut again = AppGenerator::new(GeneratorConfig::default(), 42);
/// assert_eq!(app, again.generate("demo"));
/// ```
#[derive(Debug)]
pub struct AppGenerator {
    config: GeneratorConfig,
    rng: StdRng,
}

impl AppGenerator {
    /// Creates a generator with the given configuration and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`GeneratorConfig::validate`].
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        config.validate();
        AppGenerator { config, rng: StdRng::seed_from_u64(seed) }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    fn demand(&mut self, kind: ElementKind) -> kairos_platform::ResourceVector {
        let percent = self.rng.gen_range(self.config.resource_percent.clone());
        default_capacity(kind).scaled(percent as u64, 100)
    }

    fn implementation(&mut self, kind: ElementKind) -> Implementation {
        let requires = self.demand(kind);
        let exec = self.rng.gen_range(self.config.exec_cycles.clone());
        let energy = self.rng.gen_range(self.config.energy.clone());
        Implementation::new(kind, requires, exec, energy)
    }

    /// A pinned I/O stub: light fixed slice of the FPGA/ARM front-end,
    /// independent of the orientation band.
    fn io_stub(&mut self, kind: ElementKind) -> Implementation {
        let percent = self.rng.gen_range(10..=30u64);
        let requires = default_capacity(kind).scaled(percent, 100);
        let exec = self.rng.gen_range(self.config.exec_cycles.clone());
        let energy = self.rng.gen_range(self.config.energy.clone());
        Implementation::new(kind, requires, exec, energy)
    }

    /// Generates one application.
    pub fn generate(&mut self, name: impl Into<String>) -> Application {
        let n_in = self.rng.gen_range(self.config.input_tasks.clone());
        let n_int = self.rng.gen_range(self.config.internal_tasks.clone());
        let n_out = self.rng.gen_range(self.config.output_tasks.clone());

        let mut b = ApplicationBuilder::new(name);
        let mut out_degree: Vec<u32> = Vec::new();
        let mut earlier: Vec<TaskId> = Vec::new();

        // Input tasks: occasionally pinned to the FPGA front-end by a single
        // dedicated implementation (the paper: "locations may be fixed in
        // the binding phase" when specific interfaces are required);
        // otherwise they run on the DSPs like any stream source.
        for i in 0..n_in {
            let pinned = self.rng.gen_bool(self.config.io_pin_probability);
            let imp = if pinned {
                self.io_stub(ElementKind::Fpga)
            } else {
                self.implementation(ElementKind::Dsp)
            };
            let t = b.add_task(format!("in{i}"), TaskRole::Input, vec![imp]);
            earlier.push(t);
            out_degree.push(0);
        }

        // Internal tasks: DSP implementations, occasionally an ARM
        // alternative ("multiple implementations... by different IP
        // manufacturers").
        for i in 0..n_int {
            let n_impls = self.rng.gen_range(self.config.implementations_per_task.clone());
            let mut impls = vec![self.implementation(ElementKind::Dsp)];
            for _ in 1..n_impls {
                let kind = if self.rng.gen_bool(0.3) { ElementKind::Arm } else { ElementKind::Dsp };
                impls.push(self.implementation(kind));
            }
            let t = b.add_task(format!("proc{i}"), TaskRole::Internal, impls);
            self.wire_inputs(&mut b, t, &earlier, &mut out_degree);
            earlier.push(t);
            out_degree.push(0);
        }

        // Output tasks: occasionally pinned to the ARM host, otherwise DSP.
        for i in 0..n_out {
            let pinned = self.rng.gen_bool(self.config.io_pin_probability);
            let imp = if pinned {
                self.io_stub(ElementKind::Arm)
            } else {
                self.implementation(ElementKind::Dsp)
            };
            let t = b.add_task(format!("out{i}"), TaskRole::Output, vec![imp]);
            self.wire_inputs(&mut b, t, &earlier, &mut out_degree);
            earlier.push(t);
            out_degree.push(0);
        }

        // Every source must feed someone: connect dangling inputs to the
        // first non-input task.
        let first_sink = n_in as usize;
        for i in 0..n_in as usize {
            if out_degree[i] == 0 && earlier.len() > first_sink {
                let bw = self.rng.gen_range(self.config.channel_bandwidth.clone());
                b.add_channel(earlier[i], earlier[first_sink], bw, 1);
                out_degree[i] += 1;
            }
        }

        b.build().expect("generator produces structurally valid graphs")
    }

    /// Wires 1..=max_in_degree incoming channels for `t` from earlier tasks
    /// with spare out-degree.
    fn wire_inputs(
        &mut self,
        b: &mut ApplicationBuilder,
        t: TaskId,
        earlier: &[TaskId],
        out_degree: &mut [u32],
    ) {
        if earlier.is_empty() {
            return;
        }
        let wanted = self.rng.gen_range(1..=self.config.max_in_degree.min(earlier.len() as u32));
        let mut candidates: Vec<usize> =
            (0..earlier.len()).filter(|&i| out_degree[i] < self.config.max_out_degree).collect();
        // Without spare out-degree anywhere, fall back to the most recent
        // task to keep the graph connected.
        if candidates.is_empty() {
            candidates.push(earlier.len() - 1);
        }
        let mut chosen = Vec::new();
        for _ in 0..wanted.min(candidates.len() as u32) {
            let pick = self.rng.gen_range(0..candidates.len());
            chosen.push(candidates.swap_remove(pick));
        }
        for i in chosen {
            let bw = self.rng.gen_range(self.config.channel_bandwidth.clone());
            b.add_channel(earlier[i], t, bw, 1);
            out_degree[i] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate_one(seed: u64) -> Application {
        AppGenerator::new(GeneratorConfig::default(), seed).generate("t")
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(generate_one(7), generate_one(7));
        // Different seeds almost surely differ:
        assert_ne!(generate_one(7), generate_one(8));
    }

    #[test]
    fn task_counts_respect_ranges() {
        for seed in 0..20 {
            let app = generate_one(seed);
            let c = GeneratorConfig::default();
            assert!(app.task_count() as u32 >= c.min_tasks());
            assert!(app.task_count() as u32 <= c.max_tasks());
        }
    }

    #[test]
    fn roles_and_pinning_are_structured() {
        for seed in 0..10 {
            let app = generate_one(seed);
            for task in app.tasks() {
                match task.role() {
                    TaskRole::Input => {
                        assert_eq!(task.implementations().len(), 1);
                        let target = task.implementations()[0].target();
                        assert!(
                            target == ElementKind::Fpga || target == ElementKind::Dsp,
                            "inputs are FPGA-pinned or DSP-hosted"
                        );
                    }
                    TaskRole::Output => {
                        assert_eq!(task.implementations().len(), 1);
                        let target = task.implementations()[0].target();
                        assert!(
                            target == ElementKind::Arm || target == ElementKind::Dsp,
                            "outputs are ARM-pinned or DSP-hosted"
                        );
                    }
                    TaskRole::Internal => {
                        assert!(!task.implementations().is_empty());
                        assert_eq!(
                            task.implementations()[0].target(),
                            ElementKind::Dsp,
                            "primary internal implementation targets the DSPs"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degrees_are_bounded() {
        let config = GeneratorConfig {
            internal_tasks: 8..=12,
            max_in_degree: 2,
            max_out_degree: 2,
            ..GeneratorConfig::default()
        };
        for seed in 0..10 {
            let app = AppGenerator::new(config.clone(), seed).generate("t");
            for t in app.task_ids() {
                assert!(app.producers(t).len() <= 2, "in-degree bound violated");
                assert!(app.consumers(t).len() <= 3, "out-degree bound (+1 dangling fix)");
            }
        }
    }

    #[test]
    fn non_input_tasks_have_producers() {
        for seed in 0..10 {
            let app = generate_one(seed);
            for task in app.tasks() {
                if task.role() != TaskRole::Input {
                    assert!(
                        !app.producers(task.id()).is_empty(),
                        "non-source task must consume something"
                    );
                }
            }
        }
    }

    #[test]
    fn resource_demands_stay_in_band() {
        let config = GeneratorConfig { resource_percent: 70..=100, ..GeneratorConfig::default() };
        let app = AppGenerator::new(config, 3).generate("t");
        for task in app.tasks() {
            for imp in task.implementations() {
                let cap = default_capacity(imp.target());
                let ratio = imp.requires().utilisation_of(&cap);
                assert!(ratio <= 1.0 + 1e-9, "demand within capacity");
                if task.role() == TaskRole::Internal {
                    assert!(ratio >= 0.5, "computation band demands are heavy, got {ratio}");
                }
            }
        }
    }

    #[test]
    fn channels_flow_forward() {
        // Layered construction implies src id < dst id for all channels.
        for seed in 0..10 {
            let app = generate_one(seed);
            for c in app.channels() {
                assert!(c.src() < c.dst());
            }
        }
    }
}
