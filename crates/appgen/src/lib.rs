//! # kairos-appgen
//!
//! Synthetic workload generation for the Kairos resource manager — the
//! counterpart of the paper's "in-house developed application generator,
//! which is similar to TGFF" (§IV), plus the six Table-I datasets and a
//! reconstruction of the 53-task beamforming case study of §IV-A.
//!
//! Everything is deterministic in its seed, so every experiment in this
//! repository is exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use kairos_appgen::{generate_dataset, DatasetSpec};
//!
//! let spec = DatasetSpec::all()[0]; // Communication Small
//! let apps = generate_dataset(spec, 100, 0xC0FFEE);
//! assert_eq!(apps.len(), 100);
//! assert!(apps.iter().all(|a| a.task_count() <= 5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
pub mod beamforming;
mod config;
mod datasets;
mod generator;

pub use arrivals::{ArrivalDistribution, MixEntry, WorkloadMix, WorkloadSampler};
pub use beamforming::{beamforming_app, beamforming_app_with, BeamformingConfig};
pub use config::GeneratorConfig;
pub use datasets::{generate_dataset, DatasetSpec, Orientation, SizeClass};
pub use generator::AppGenerator;
