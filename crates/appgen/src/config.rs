//! Generator parameters.
//!
//! Mirrors the knobs of the paper's in-house TGFF-like tool (§IV): "the
//! structure of an application can be specified with a number of input,
//! internal, and output tasks. Also the maximum in-degree and out-degree of
//! tasks gives direction to the generated communication structure. For each
//! task, we generate a number of task implementations, annotated with
//! bounded random resource requirements."

use std::ops::RangeInclusive;

/// Parameters of the synthetic application generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of input (source) tasks.
    pub input_tasks: RangeInclusive<u32>,
    /// Number of internal (processing) tasks.
    pub internal_tasks: RangeInclusive<u32>,
    /// Number of output (sink) tasks.
    pub output_tasks: RangeInclusive<u32>,
    /// Maximum in-degree of any generated task.
    pub max_in_degree: u32,
    /// Maximum out-degree of any generated task.
    pub max_out_degree: u32,
    /// Number of alternative implementations per internal task.
    pub implementations_per_task: RangeInclusive<u32>,
    /// Task resource demand as a fraction of the target element kind's
    /// reference capacity, in percent (the paper's 70–100% computation /
    /// 10–70% communication bands).
    pub resource_percent: RangeInclusive<u32>,
    /// Channel bandwidth demand range.
    pub channel_bandwidth: RangeInclusive<u64>,
    /// Worst-case execution cycles per firing.
    pub exec_cycles: RangeInclusive<u64>,
    /// Energy cost per firing (the binding objective).
    pub energy: RangeInclusive<u64>,
    /// Probability that an input (output) task is pinned to the FPGA (ARM)
    /// front-end by a single dedicated implementation; unpinned I/O tasks
    /// target the DSPs like internal tasks. Pinned I/O stubs claim a light
    /// 10-30% slice of their host regardless of the orientation band.
    pub io_pin_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            input_tasks: 1..=1,
            internal_tasks: 2..=6,
            output_tasks: 1..=1,
            max_in_degree: 3,
            max_out_degree: 3,
            implementations_per_task: 1..=3,
            resource_percent: 10..=70,
            channel_bandwidth: 50..=300,
            exec_cycles: 50..=500,
            energy: 1..=100,
            io_pin_probability: 0.25,
        }
    }
}

impl GeneratorConfig {
    /// Maximum total task count this configuration can produce.
    pub fn max_tasks(&self) -> u32 {
        self.input_tasks.end() + self.internal_tasks.end() + self.output_tasks.end()
    }

    /// Minimum total task count this configuration can produce.
    pub fn min_tasks(&self) -> u32 {
        self.input_tasks.start() + self.internal_tasks.start() + self.output_tasks.start()
    }

    /// Basic sanity checks on the ranges.
    ///
    /// # Panics
    ///
    /// Panics when a range is empty, degrees are zero, or the resource
    /// percentage exceeds 100.
    pub fn validate(&self) {
        assert!(!self.input_tasks.is_empty(), "input task range must be non-empty");
        assert!(!self.internal_tasks.is_empty(), "internal task range must be non-empty");
        assert!(!self.output_tasks.is_empty(), "output task range must be non-empty");
        assert!(self.max_in_degree > 0, "max in-degree must be positive");
        assert!(self.max_out_degree > 0, "max out-degree must be positive");
        assert!(!self.implementations_per_task.is_empty(), "impl range must be non-empty");
        assert!(*self.resource_percent.end() <= 100, "resource percent is capped at 100");
        assert!(*self.resource_percent.start() > 0, "resource percent must be positive");
        assert!(
            (0.0..=1.0).contains(&self.io_pin_probability),
            "io_pin_probability must be a probability"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = GeneratorConfig::default();
        c.validate();
        assert_eq!(c.min_tasks(), 4);
        assert_eq!(c.max_tasks(), 8);
    }

    #[test]
    #[should_panic(expected = "capped at 100")]
    fn overlarge_fraction_panics() {
        let c = GeneratorConfig { resource_percent: 50..=150, ..GeneratorConfig::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "in-degree")]
    fn zero_degree_panics() {
        let c = GeneratorConfig { max_in_degree: 0, ..GeneratorConfig::default() };
        c.validate();
    }
}
