//! The beamforming case-study application (paper §IV-A).
//!
//! "Containing 53 tasks in a tree-like structure, this application requires
//! all 45 DSPs available in the platform, and can thus be considered to be a
//! difficult mapping problem."
//!
//! The reconstruction (the original is CRISP-project proprietary) is a
//! systolic delay-and-sum beamformer: each antenna group is a *chain* of
//! beam stages that accumulates partial sums, one group per platform
//! package, with a combiner chain merging group results into the ARM host:
//!
//! ```text
//! adc (FPGA) ─┬─> dist0 (MEM) ─> beam0 ─> beam1 ─> ... ─> beam7 ──> comb0 ─┐
//!             ├─> dist1 (MEM) ─> beam8 ─> ... ─────────> beam15 ─> comb1 ─┤   (partial-sum
//!             ├─> ...                                                     ...  chain)
//!             └─> dist4 (MEM) ─> beam32 ─> ... ────────> beam39 ─> comb4 ─┴─> acc (ARM) ─> mon (ARM)
//! ```
//!
//! (each `comb_p` feeds `comb_{p+1}`; `comb4` feeds `acc`.)
//!
//! One source + 5 distributors + 40 beam stages + 5 combiners + 1
//! accumulator + 1 monitor = **53 tasks**; 45 of them (beam stages plus
//! combiners) each claim more than half a DSP, so every one of the 45 DSPs must
//! host exactly one — the "all 45 DSPs" property that makes the mapping
//! tight, and the chain structure makes admission succeed only when the
//! cost-function weights produce contiguous, communication-local layouts
//! (the Fig. 10 experiment).

use kairos_app::{Application, ApplicationBuilder, Constraint, Implementation, TaskRole};
use kairos_platform::{ElementKind, ResourceVector};

/// Number of antenna-channel beam-stage tasks.
pub const BEAM_TASKS: usize = 40;
/// Number of partial-sum combiner tasks.
pub const COMBINER_TASKS: usize = 5;
/// Total task count of the case-study application.
pub const TOTAL_TASKS: usize = 53;

/// Parameters of the beamforming application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamformingConfig {
    /// DSP compute demand per beam/combiner task (out of 1000); anything
    /// above 500 forces one task per DSP.
    pub dsp_load: u64,
    /// Bandwidth of the beam-chain and combiner-chain channels.
    pub stream_bandwidth: u64,
    /// Bandwidth of the source fan-out channels.
    pub feed_bandwidth: u64,
    /// Steady-state period constraint attached to the app, in cycles
    /// (checked by the validation phase); `None` for no constraint.
    pub max_period_cycles: Option<u64>,
}

impl Default for BeamformingConfig {
    fn default() -> Self {
        BeamformingConfig {
            dsp_load: 600,
            stream_bandwidth: 155,
            feed_bandwidth: 250,
            max_period_cycles: None,
        }
    }
}

/// Builds the 53-task beamforming application with default parameters.
///
/// # Examples
///
/// ```
/// use kairos_appgen::beamforming;
///
/// let app = beamforming::beamforming_app();
/// assert_eq!(app.task_count(), beamforming::TOTAL_TASKS);
/// assert!(app.is_connected());
/// ```
pub fn beamforming_app() -> Application {
    beamforming_app_with(BeamformingConfig::default())
}

/// Builds the beamforming application with explicit parameters.
///
/// # Panics
///
/// Panics if `config.dsp_load` exceeds the DSP capacity (1000).
pub fn beamforming_app_with(config: BeamformingConfig) -> Application {
    assert!(config.dsp_load <= 1000, "dsp_load exceeds DSP capacity");
    let mut b = ApplicationBuilder::new("beamforming");

    let fpga_imp =
        Implementation::new(ElementKind::Fpga, ResourceVector::new(200, 64, 4000, 2), 120, 20);
    let mem_imp =
        Implementation::new(ElementKind::Memory, ResourceVector::new(0, 2500, 0, 0), 60, 5);
    let dsp_imp = Implementation::new(
        ElementKind::Dsp,
        ResourceVector::new(config.dsp_load, 24, 0, 0),
        100,
        10,
    );
    let arm_acc =
        Implementation::new(ElementKind::Arm, ResourceVector::new(300, 256, 0, 1), 150, 15);
    let arm_mon = Implementation::new(ElementKind::Arm, ResourceVector::new(150, 128, 0, 1), 80, 8);

    let adc = b.add_task("adc", TaskRole::Input, vec![fpga_imp]);

    let groups = COMBINER_TASKS;
    let beams_per_group = BEAM_TASKS / groups;
    let mut combiners = Vec::with_capacity(groups);
    for g in 0..groups {
        let dist = b.add_task(format!("dist{g}"), TaskRole::Internal, vec![mem_imp]);
        b.add_channel(adc, dist, config.feed_bandwidth, 1);
        // Systolic beam chain: dist -> beam0 -> beam1 -> ... -> beam7.
        let mut prev = dist;
        for i in 0..beams_per_group {
            let beam = b.add_task(
                format!("beam{}", g * beams_per_group + i),
                TaskRole::Internal,
                vec![dsp_imp],
            );
            b.add_channel(prev, beam, config.stream_bandwidth, 1);
            prev = beam;
        }
        // Group combiner terminates the chain.
        let comb = b.add_task(format!("comb{g}"), TaskRole::Internal, vec![dsp_imp]);
        b.add_channel(prev, comb, config.stream_bandwidth, 1);
        combiners.push(comb);
    }

    // Partial-sum combiner chain, ending in the ARM accumulator.
    for pair in combiners.windows(2) {
        b.add_channel(pair[0], pair[1], config.stream_bandwidth, 1);
    }
    let acc = b.add_task("acc", TaskRole::Output, vec![arm_acc]);
    b.add_channel(*combiners.last().expect("at least one group"), acc, config.stream_bandwidth, 1);
    let mon = b.add_task("mon", TaskRole::Internal, vec![arm_mon]);
    b.add_channel(acc, mon, 30, 1);

    if let Some(max_period_cycles) = config.max_period_cycles {
        b.add_constraint(Constraint::Throughput { max_period_cycles });
    }

    let app = b.build().expect("beamformer is structurally valid");
    debug_assert_eq!(app.task_count(), TOTAL_TASKS);
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_inventory_matches_the_paper() {
        let app = beamforming_app();
        assert_eq!(app.task_count(), 53);
        let dsp_tasks =
            app.tasks().filter(|t| t.implementations()[0].target() == ElementKind::Dsp).count();
        assert_eq!(dsp_tasks, 45, "needs all 45 DSPs of the CRISP platform");
    }

    #[test]
    fn structure_is_a_connected_tree_with_fanout() {
        let app = beamforming_app();
        assert!(app.is_connected());
        // adc fans out to the 5 distributors.
        assert_eq!(app.consumers(kairos_app::TaskId(0)).len(), 5);
        // 5 feeds + 5*(8 chain hops + 1 into comb) + 4 comb chain + 1 to acc
        // + 1 acc->mon
        assert_eq!(app.channel_count(), 5 + 5 * 9 + 4 + 1 + 1);
    }

    #[test]
    fn dsp_tasks_exceed_half_an_element() {
        let app = beamforming_app();
        for task in app.tasks() {
            let imp = &task.implementations()[0];
            if imp.target() == ElementKind::Dsp {
                assert!(imp.requires().get(kairos_platform::ResourceKind::Compute) > 500);
            }
        }
    }

    #[test]
    fn beam_chains_are_chains() {
        let app = beamforming_app();
        // Every beam task has exactly one producer and one consumer.
        for task in app.tasks() {
            if task.name().starts_with("beam") {
                assert_eq!(app.producers(task.id()).len(), 1, "{}", task.name());
                assert_eq!(app.consumers(task.id()).len(), 1, "{}", task.name());
            }
        }
    }

    #[test]
    fn config_is_respected() {
        let app = beamforming_app_with(BeamformingConfig {
            dsp_load: 777,
            max_period_cycles: Some(50_000),
            ..BeamformingConfig::default()
        });
        assert_eq!(app.constraints().len(), 1);
        let beam0 = app.tasks().find(|t| t.name() == "beam0").unwrap();
        assert_eq!(
            beam0.implementations()[0].requires().get(kairos_platform::ResourceKind::Compute),
            777
        );
    }

    #[test]
    #[should_panic(expected = "exceeds DSP capacity")]
    fn overloaded_config_panics() {
        let _ = beamforming_app_with(BeamformingConfig {
            dsp_load: 2000,
            ..BeamformingConfig::default()
        });
    }
}
