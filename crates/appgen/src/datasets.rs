//! The six synthetic datasets of the paper's evaluation (Table I).
//!
//! Applications are "either computational intensive or communication
//! oriented. Tasks in the first set use between 70% and 100% of the
//! element's resources, and tasks in communication oriented applications use
//! between 10% and 70%. [...] we categorize applications based on their
//! size, namely small (< 5 tasks), medium (6-10 tasks) and large (11-16
//! tasks) applications." Each dataset initially contains 100 applications;
//! those unmappable on an empty platform are filtered out before the
//! sequence experiments.

use std::fmt;

use serde::{Deserialize, Serialize};

use kairos_app::Application;

use crate::config::GeneratorConfig;
use crate::generator::AppGenerator;

/// Whether a dataset's tasks are resource-heavy or resource-light.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Orientation {
    /// Light tasks (10–70% of an element), many sharing elements —
    /// stress lands on the interconnect.
    Communication,
    /// Heavy tasks (70–100% of an element) — stress lands on the elements.
    Computation,
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::Communication => f.write_str("Communication"),
            Orientation::Computation => f.write_str("Computation"),
        }
    }
}

/// Application size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// 3–5 tasks.
    Small,
    /// 6–10 tasks.
    Medium,
    /// 11–16 tasks.
    Large,
}

impl SizeClass {
    /// Inclusive total-task bounds of the class.
    pub fn task_bounds(self) -> (u32, u32) {
        match self {
            SizeClass::Small => (3, 5),
            SizeClass::Medium => (6, 10),
            SizeClass::Large => (11, 16),
        }
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeClass::Small => f.write_str("Small"),
            SizeClass::Medium => f.write_str("Medium"),
            SizeClass::Large => f.write_str("Large"),
        }
    }
}

/// One of the paper's six dataset specifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Resource-usage orientation.
    pub orientation: Orientation,
    /// Application size class.
    pub size: SizeClass,
}

impl DatasetSpec {
    /// All six datasets, in Table I order.
    pub fn all() -> [DatasetSpec; 6] {
        [
            DatasetSpec { orientation: Orientation::Communication, size: SizeClass::Small },
            DatasetSpec { orientation: Orientation::Communication, size: SizeClass::Medium },
            DatasetSpec { orientation: Orientation::Communication, size: SizeClass::Large },
            DatasetSpec { orientation: Orientation::Computation, size: SizeClass::Small },
            DatasetSpec { orientation: Orientation::Computation, size: SizeClass::Medium },
            DatasetSpec { orientation: Orientation::Computation, size: SizeClass::Large },
        ]
    }

    /// The generator configuration realising this dataset.
    pub fn generator_config(&self) -> GeneratorConfig {
        let (lo, hi) = self.size.task_bounds();
        // One input and one output task; the internals absorb the rest.
        let internal_lo = lo.saturating_sub(2).max(1);
        let internal_hi = hi - 2;
        let resource_percent = match self.orientation {
            Orientation::Communication => 10..=70,
            Orientation::Computation => 70..=100,
        };
        // Light tasks stream more data relative to their compute, which is
        // what lets communication-oriented datasets time-share elements
        // until the interconnect saturates.
        // Large computation-oriented applications also develop "significant
        // communication resource requirements" (Table I discussion).
        let channel_bandwidth = match (self.orientation, self.size) {
            (Orientation::Communication, SizeClass::Small) => 300..=650,
            (Orientation::Communication, _) => 220..=550,
            (Orientation::Computation, SizeClass::Large) => 150..=400,
            (Orientation::Computation, _) => 40..=150,
        };
        GeneratorConfig {
            input_tasks: 1..=1,
            internal_tasks: internal_lo..=internal_hi,
            output_tasks: 1..=1,
            resource_percent,
            channel_bandwidth,
            ..GeneratorConfig::default()
        }
    }

    /// Display name as used in Table I.
    pub fn name(&self) -> String {
        format!("{} {}", self.orientation, self.size)
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.orientation, self.size)
    }
}

/// Generates the `count` applications of a dataset. Deterministic in
/// `(spec, seed)`: application `i` is generated with the per-dataset RNG
/// stream, named `<dataset>-<i>`.
pub fn generate_dataset(spec: DatasetSpec, count: usize, seed: u64) -> Vec<Application> {
    let mut generator = AppGenerator::new(spec.generator_config(), seed);
    (0..count)
        .map(|i| {
            generator.generate(format!("{}-{i}", spec.name().to_lowercase().replace(' ', "-")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_datasets_in_table_order() {
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].name(), "Communication Small");
        assert_eq!(all[5].name(), "Computation Large");
    }

    #[test]
    fn size_classes_bound_task_counts() {
        for spec in DatasetSpec::all() {
            let apps = generate_dataset(spec, 30, 1);
            let (lo, hi) = spec.size.task_bounds();
            for app in &apps {
                assert!(
                    (app.task_count() as u32) >= lo && (app.task_count() as u32) <= hi,
                    "{}: {} tasks outside [{lo}, {hi}]",
                    spec,
                    app.task_count()
                );
            }
        }
    }

    #[test]
    fn orientation_controls_resource_band() {
        use kairos_platform::topology::default_capacity;
        let comm = generate_dataset(
            DatasetSpec { orientation: Orientation::Communication, size: SizeClass::Medium },
            10,
            2,
        );
        let comp = generate_dataset(
            DatasetSpec { orientation: Orientation::Computation, size: SizeClass::Medium },
            10,
            2,
        );
        let mean_util = |apps: &[Application]| {
            let mut total = 0.0;
            let mut n = 0usize;
            for app in apps {
                for task in app.tasks() {
                    for imp in task.implementations() {
                        total += imp.requires().utilisation_of(&default_capacity(imp.target()));
                        n += 1;
                    }
                }
            }
            total / n as f64
        };
        assert!(mean_util(&comm) < 0.55, "communication tasks are light");
        assert!(mean_util(&comp) > 0.7, "computation tasks are heavy");
    }

    #[test]
    fn dataset_generation_is_deterministic() {
        let spec = DatasetSpec::all()[0];
        assert_eq!(generate_dataset(spec, 5, 9), generate_dataset(spec, 5, 9));
    }

    #[test]
    fn dataset_apps_have_unique_names() {
        let apps = generate_dataset(DatasetSpec::all()[3], 10, 0);
        let mut names: Vec<_> = apps.iter().map(|a| a.name().to_owned()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }
}
