//! Arrival-process sampling for long-running multi-application workloads.
//!
//! The paper evaluates one-shot admission sequences; run-time management is
//! really about applications *arriving and leaving over time*. This module
//! provides the reusable sampling layer for such workloads: a weighted
//! mixture over the Table-I datasets ([`WorkloadMix`]) and a seeded sampler
//! ([`WorkloadSampler`]) drawing applications, exponential inter-arrival
//! gaps and exponential lifetimes from it. The `kairos-sim` discrete-event
//! engine is the primary consumer.
//!
//! Everything is deterministic in the seed, like the rest of this crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use kairos_app::Application;

use crate::datasets::DatasetSpec;
use crate::generator::AppGenerator;

/// One weighted component of a [`WorkloadMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixEntry {
    /// The dataset applications of this component are drawn from.
    pub spec: DatasetSpec,
    /// Relative weight of the component within the mixture.
    pub weight: u32,
}

impl MixEntry {
    /// A component of `spec` with `weight`.
    pub fn new(spec: DatasetSpec, weight: u32) -> Self {
        MixEntry { spec, weight }
    }
}

/// A weighted mixture over application datasets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMix {
    entries: Vec<MixEntry>,
}

impl WorkloadMix {
    /// A mixture over `entries`.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is empty or all weights are zero.
    pub fn new(entries: Vec<MixEntry>) -> Self {
        assert!(!entries.is_empty(), "workload mix needs at least one component");
        assert!(entries.iter().any(|e| e.weight > 0), "workload mix needs a positive weight");
        WorkloadMix { entries }
    }

    /// A uniform mixture over the given datasets.
    pub fn uniform(specs: impl IntoIterator<Item = DatasetSpec>) -> Self {
        WorkloadMix::new(specs.into_iter().map(|spec| MixEntry::new(spec, 1)).collect())
    }

    /// A uniform mixture over all six Table-I datasets.
    pub fn all_datasets() -> Self {
        WorkloadMix::uniform(DatasetSpec::all())
    }

    /// The mixture components.
    pub fn entries(&self) -> &[MixEntry] {
        &self.entries
    }

    fn total_weight(&self) -> u64 {
        self.entries.iter().map(|e| e.weight as u64).sum()
    }
}

/// Seeded sampler of application arrivals from a [`WorkloadMix`].
///
/// # Examples
///
/// ```
/// use kairos_appgen::{WorkloadMix, WorkloadSampler};
///
/// let mut sampler = WorkloadSampler::new("w", WorkloadMix::all_datasets(), 7);
/// let app = sampler.next_app();
/// let gap = sampler.next_delay(50);
/// assert!(gap >= 1);
/// // Same seed, same stream:
/// let mut again = WorkloadSampler::new("w", WorkloadMix::all_datasets(), 7);
/// assert_eq!(app, again.next_app());
/// assert_eq!(gap, again.next_delay(50));
/// ```
#[derive(Debug)]
pub struct WorkloadSampler {
    label: String,
    mix: WorkloadMix,
    rng: StdRng,
    generated: u64,
}

impl WorkloadSampler {
    /// A sampler drawing from `mix`, deterministic in `seed`. Generated
    /// applications are named `<label>-<n>`.
    pub fn new(label: impl Into<String>, mix: WorkloadMix, seed: u64) -> Self {
        WorkloadSampler { label: label.into(), mix, rng: StdRng::seed_from_u64(seed), generated: 0 }
    }

    /// Number of applications drawn so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Draws the next application: picks a mixture component by weight, then
    /// generates one application from a sub-generator seeded off this
    /// sampler's stream.
    pub fn next_app(&mut self) -> Application {
        let mut pick = self.rng.gen_range(0..self.mix.total_weight());
        let mut spec = self.mix.entries()[0].spec;
        for entry in self.mix.entries() {
            if pick < entry.weight as u64 {
                spec = entry.spec;
                break;
            }
            pick -= entry.weight as u64;
        }
        let sub_seed = self.rng.gen_range(0..u64::MAX);
        let name = format!("{}-{}", self.label, self.generated);
        self.generated += 1;
        AppGenerator::new(spec.generator_config(), sub_seed).generate(name)
    }

    /// Draws an exponentially distributed delay with the given mean
    /// (inter-arrival gap or lifetime), rounded up to at least one tick.
    ///
    /// # Panics
    ///
    /// Panics when `mean` is zero.
    pub fn next_delay(&mut self, mean: u64) -> u64 {
        assert!(mean > 0, "exponential delay needs a positive mean");
        let u = self.rng.gen_range(0.0f64..1.0);
        let delay = -(1.0 - u).ln() * mean as f64;
        (delay.ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Orientation, SizeClass};

    #[test]
    fn sampler_is_deterministic_in_seed() {
        let mix = WorkloadMix::all_datasets();
        let mut a = WorkloadSampler::new("s", mix.clone(), 11);
        let mut b = WorkloadSampler::new("s", mix.clone(), 11);
        for _ in 0..10 {
            assert_eq!(a.next_app(), b.next_app());
            assert_eq!(a.next_delay(30), b.next_delay(30));
        }
        let mut c = WorkloadSampler::new("s", mix, 12);
        let differs = (0..10).any(|_| a.next_app() != c.next_app());
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn app_names_are_unique_and_labelled() {
        let mut s = WorkloadSampler::new("web", WorkloadMix::all_datasets(), 0);
        let names: Vec<String> = (0..5).map(|_| s.next_app().name().to_owned()).collect();
        assert_eq!(s.generated(), 5);
        for (i, name) in names.iter().enumerate() {
            assert_eq!(name, &format!("web-{i}"));
        }
    }

    #[test]
    fn weighted_mix_respects_zero_weights() {
        let only = DatasetSpec { orientation: Orientation::Computation, size: SizeClass::Small };
        let ignored =
            DatasetSpec { orientation: Orientation::Communication, size: SizeClass::Large };
        let mix = WorkloadMix::new(vec![MixEntry::new(only, 3), MixEntry::new(ignored, 0)]);
        let mut s = WorkloadSampler::new("z", mix, 5);
        let (lo, hi) = only.size.task_bounds();
        for _ in 0..20 {
            let app = s.next_app();
            let n = app.task_count() as u32;
            assert!(n >= lo && n <= hi, "only the weighted component may be drawn");
        }
    }

    #[test]
    fn exponential_delays_have_roughly_the_requested_mean() {
        let mut s = WorkloadSampler::new("d", WorkloadMix::all_datasets(), 1);
        let n = 4000u64;
        let sum: u64 = (0..n).map(|_| s.next_delay(40)).sum();
        let mean = sum as f64 / n as f64;
        assert!((30.0..50.0).contains(&mean), "mean {mean} too far from 40");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mix_is_rejected() {
        WorkloadMix::new(Vec::new());
    }
}
