//! Arrival-process sampling for long-running multi-application workloads.
//!
//! The paper evaluates one-shot admission sequences; run-time management is
//! really about applications *arriving and leaving over time*. This module
//! provides the reusable sampling layer for such workloads: a weighted
//! mixture over the Table-I datasets ([`WorkloadMix`]) and a seeded sampler
//! ([`WorkloadSampler`]) drawing applications, exponential inter-arrival
//! gaps and exponential lifetimes from it. The `kairos-sim` discrete-event
//! engine is the primary consumer.
//!
//! Everything is deterministic in the seed, like the rest of this crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use kairos_app::Application;

use crate::datasets::DatasetSpec;
use crate::generator::AppGenerator;

/// The shape of an inter-arrival (or lifetime) delay distribution.
///
/// The paper's evaluation is purely Poissonian; real traffic is often
/// anything but. `Deterministic` models periodic sources (sensor frames,
/// fixed-rate codecs), `Pareto` models heavy-tailed bursts where rare long
/// gaps separate dense clumps of arrivals — the regime that stresses
/// admission queues hardest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ArrivalDistribution {
    /// Memoryless exponential gaps (Poisson arrivals) — the default.
    #[default]
    Exponential,
    /// Every gap is exactly the mean: a strictly periodic source.
    Deterministic,
    /// Heavy-tailed Pareto gaps with shape `alpha_centi / 100`.
    ///
    /// The scale is derived from the requested mean, so the long-run rate
    /// matches the other distributions; the shape controls burstiness
    /// (values just above 100 are extremely bursty). Must be `> 100` so
    /// the mean exists.
    Pareto {
        /// Tail shape α in hundredths (e.g. `150` ⇒ α = 1.5).
        alpha_centi: u32,
    },
}

impl ArrivalDistribution {
    /// Stable name used in scenario JSON documents.
    pub fn name(&self) -> String {
        match *self {
            ArrivalDistribution::Exponential => "exponential".to_owned(),
            ArrivalDistribution::Deterministic => "deterministic".to_owned(),
            ArrivalDistribution::Pareto { alpha_centi } => {
                format!("pareto-{}.{:02}", alpha_centi / 100, alpha_centi % 100)
            }
        }
    }
}

/// One weighted component of a [`WorkloadMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixEntry {
    /// The dataset applications of this component are drawn from.
    pub spec: DatasetSpec,
    /// Relative weight of the component within the mixture.
    pub weight: u32,
}

impl MixEntry {
    /// A component of `spec` with `weight`.
    pub fn new(spec: DatasetSpec, weight: u32) -> Self {
        MixEntry { spec, weight }
    }
}

/// A weighted mixture over application datasets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMix {
    entries: Vec<MixEntry>,
}

impl WorkloadMix {
    /// A mixture over `entries`.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is empty or all weights are zero.
    pub fn new(entries: Vec<MixEntry>) -> Self {
        assert!(!entries.is_empty(), "workload mix needs at least one component");
        assert!(entries.iter().any(|e| e.weight > 0), "workload mix needs a positive weight");
        WorkloadMix { entries }
    }

    /// A uniform mixture over the given datasets.
    pub fn uniform(specs: impl IntoIterator<Item = DatasetSpec>) -> Self {
        WorkloadMix::new(specs.into_iter().map(|spec| MixEntry::new(spec, 1)).collect())
    }

    /// A uniform mixture over all six Table-I datasets.
    pub fn all_datasets() -> Self {
        WorkloadMix::uniform(DatasetSpec::all())
    }

    /// The mixture components.
    pub fn entries(&self) -> &[MixEntry] {
        &self.entries
    }

    fn total_weight(&self) -> u64 {
        self.entries.iter().map(|e| e.weight as u64).sum()
    }
}

/// Seeded sampler of application arrivals from a [`WorkloadMix`].
///
/// # Examples
///
/// ```
/// use kairos_appgen::{WorkloadMix, WorkloadSampler};
///
/// let mut sampler = WorkloadSampler::new("w", WorkloadMix::all_datasets(), 7);
/// let app = sampler.next_app();
/// let gap = sampler.next_delay(50);
/// assert!(gap >= 1);
/// // Same seed, same stream:
/// let mut again = WorkloadSampler::new("w", WorkloadMix::all_datasets(), 7);
/// assert_eq!(app, again.next_app());
/// assert_eq!(gap, again.next_delay(50));
/// ```
#[derive(Debug)]
pub struct WorkloadSampler {
    label: String,
    mix: WorkloadMix,
    rng: StdRng,
    generated: u64,
}

impl WorkloadSampler {
    /// A sampler drawing from `mix`, deterministic in `seed`. Generated
    /// applications are named `<label>-<n>`.
    pub fn new(label: impl Into<String>, mix: WorkloadMix, seed: u64) -> Self {
        WorkloadSampler { label: label.into(), mix, rng: StdRng::seed_from_u64(seed), generated: 0 }
    }

    /// Number of applications drawn so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Draws the next application: picks a mixture component by weight, then
    /// generates one application from a sub-generator seeded off this
    /// sampler's stream.
    pub fn next_app(&mut self) -> Application {
        let mut pick = self.rng.gen_range(0..self.mix.total_weight());
        let mut spec = self.mix.entries()[0].spec;
        for entry in self.mix.entries() {
            if pick < entry.weight as u64 {
                spec = entry.spec;
                break;
            }
            pick -= entry.weight as u64;
        }
        let sub_seed = self.rng.gen_range(0..u64::MAX);
        let name = format!("{}-{}", self.label, self.generated);
        self.generated += 1;
        AppGenerator::new(spec.generator_config(), sub_seed).generate(name)
    }

    /// Draws an exponentially distributed delay with the given mean
    /// (inter-arrival gap or lifetime), rounded up to at least one tick.
    ///
    /// # Panics
    ///
    /// Panics when `mean` is zero.
    pub fn next_delay(&mut self, mean: u64) -> u64 {
        self.next_delay_with(ArrivalDistribution::Exponential, mean)
    }

    /// Draws a delay from `dist` with the given mean, rounded up to at
    /// least one tick. `Deterministic` consumes no randomness; the others
    /// consume exactly one draw, so swapping distributions between phases
    /// does not perturb unrelated streams.
    ///
    /// # Panics
    ///
    /// Panics when `mean` is zero, or when a Pareto shape is `<= 100`
    /// (the mean would diverge).
    pub fn next_delay_with(&mut self, dist: ArrivalDistribution, mean: u64) -> u64 {
        assert!(mean > 0, "delay distribution needs a positive mean");
        let delay = match dist {
            ArrivalDistribution::Deterministic => return mean.max(1),
            ArrivalDistribution::Exponential => {
                let u = self.rng.gen_range(0.0f64..1.0);
                -(1.0 - u).ln() * mean as f64
            }
            ArrivalDistribution::Pareto { alpha_centi } => {
                assert!(alpha_centi > 100, "Pareto shape must exceed 1.00 for a finite mean");
                let alpha = alpha_centi as f64 / 100.0;
                // Scale x_m chosen so E[X] = alpha * x_m / (alpha - 1) = mean.
                let scale = mean as f64 * (alpha - 1.0) / alpha;
                let u = self.rng.gen_range(0.0f64..1.0);
                scale / (1.0 - u).powf(1.0 / alpha)
            }
        };
        (delay.ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Orientation, SizeClass};

    #[test]
    fn sampler_is_deterministic_in_seed() {
        let mix = WorkloadMix::all_datasets();
        let mut a = WorkloadSampler::new("s", mix.clone(), 11);
        let mut b = WorkloadSampler::new("s", mix.clone(), 11);
        for _ in 0..10 {
            assert_eq!(a.next_app(), b.next_app());
            assert_eq!(a.next_delay(30), b.next_delay(30));
        }
        let mut c = WorkloadSampler::new("s", mix, 12);
        let differs = (0..10).any(|_| a.next_app() != c.next_app());
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn app_names_are_unique_and_labelled() {
        let mut s = WorkloadSampler::new("web", WorkloadMix::all_datasets(), 0);
        let names: Vec<String> = (0..5).map(|_| s.next_app().name().to_owned()).collect();
        assert_eq!(s.generated(), 5);
        for (i, name) in names.iter().enumerate() {
            assert_eq!(name, &format!("web-{i}"));
        }
    }

    #[test]
    fn weighted_mix_respects_zero_weights() {
        let only = DatasetSpec { orientation: Orientation::Computation, size: SizeClass::Small };
        let ignored =
            DatasetSpec { orientation: Orientation::Communication, size: SizeClass::Large };
        let mix = WorkloadMix::new(vec![MixEntry::new(only, 3), MixEntry::new(ignored, 0)]);
        let mut s = WorkloadSampler::new("z", mix, 5);
        let (lo, hi) = only.size.task_bounds();
        for _ in 0..20 {
            let app = s.next_app();
            let n = app.task_count() as u32;
            assert!(n >= lo && n <= hi, "only the weighted component may be drawn");
        }
    }

    #[test]
    fn exponential_delays_have_roughly_the_requested_mean() {
        let mut s = WorkloadSampler::new("d", WorkloadMix::all_datasets(), 1);
        let n = 4000u64;
        let sum: u64 = (0..n).map(|_| s.next_delay(40)).sum();
        let mean = sum as f64 / n as f64;
        assert!((30.0..50.0).contains(&mean), "mean {mean} too far from 40");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mix_is_rejected() {
        WorkloadMix::new(Vec::new());
    }

    #[test]
    fn deterministic_delays_are_exactly_the_mean() {
        let mut s = WorkloadSampler::new("d", WorkloadMix::all_datasets(), 1);
        for mean in [1u64, 7, 40, 1000] {
            assert_eq!(s.next_delay_with(ArrivalDistribution::Deterministic, mean), mean);
        }
        // And no randomness is consumed: the exponential stream after a
        // deterministic draw matches a fresh sampler's first draw.
        let mut a = WorkloadSampler::new("d", WorkloadMix::all_datasets(), 2);
        let mut b = WorkloadSampler::new("d", WorkloadMix::all_datasets(), 2);
        a.next_delay_with(ArrivalDistribution::Deterministic, 9);
        assert_eq!(a.next_delay(30), b.next_delay(30));
    }

    #[test]
    fn pareto_delays_match_the_requested_mean_roughly() {
        let mut s = WorkloadSampler::new("p", WorkloadMix::all_datasets(), 3);
        let dist = ArrivalDistribution::Pareto { alpha_centi: 250 };
        let n = 20_000u64;
        let draws: Vec<u64> = (0..n).map(|_| s.next_delay_with(dist, 40)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / n as f64;
        assert!((30.0..55.0).contains(&mean), "mean {mean} too far from 40");
        // Heavy tail: the maximum dwarfs the mean far more than the
        // deterministic distribution ever could.
        assert!(*draws.iter().max().unwrap() > 200, "tail draws should exceed 5x the mean");
        assert!(draws.iter().all(|&d| d >= 1));
    }

    #[test]
    fn pareto_is_deterministic_in_seed() {
        let dist = ArrivalDistribution::Pareto { alpha_centi: 150 };
        let mut a = WorkloadSampler::new("p", WorkloadMix::all_datasets(), 9);
        let mut b = WorkloadSampler::new("p", WorkloadMix::all_datasets(), 9);
        for _ in 0..50 {
            assert_eq!(a.next_delay_with(dist, 25), b.next_delay_with(dist, 25));
        }
    }

    #[test]
    #[should_panic(expected = "shape must exceed")]
    fn pareto_shape_at_or_below_one_is_rejected() {
        let mut s = WorkloadSampler::new("p", WorkloadMix::all_datasets(), 1);
        s.next_delay_with(ArrivalDistribution::Pareto { alpha_centi: 100 }, 10);
    }

    #[test]
    fn distribution_names_are_stable() {
        assert_eq!(ArrivalDistribution::Exponential.name(), "exponential");
        assert_eq!(ArrivalDistribution::Deterministic.name(), "deterministic");
        assert_eq!(ArrivalDistribution::Pareto { alpha_centi: 150 }.name(), "pareto-1.50");
        assert_eq!(ArrivalDistribution::default(), ArrivalDistribution::Exponential);
    }
}
