//! Property-based tests of the workload generator: every generated
//! application is structurally valid, respects the configured bounds, and
//! the paper's datasets have their documented characteristics.

use proptest::prelude::*;

use kairos_appgen::{
    beamforming_app_with, generate_dataset, AppGenerator, BeamformingConfig, DatasetSpec,
    GeneratorConfig, Orientation, SizeClass,
};
use kairos_platform::topology::default_capacity;

fn config() -> impl Strategy<Value = GeneratorConfig> {
    (1u32..3, 1u32..8, 1u32..3, 1u32..5, 1u32..5, 10u32..60, 0.0f64..1.0).prop_map(
        |(n_in, n_int, n_out, max_in, max_out, pct_lo, pin)| GeneratorConfig {
            input_tasks: n_in..=n_in + 1,
            internal_tasks: n_int..=n_int + 2,
            output_tasks: n_out..=n_out + 1,
            max_in_degree: max_in,
            max_out_degree: max_out,
            resource_percent: pct_lo..=(pct_lo + 40).min(100),
            io_pin_probability: pin,
            ..GeneratorConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generation never panics and always yields a valid application within
    /// the configured task bounds.
    #[test]
    fn generated_apps_respect_bounds(config in config(), seed in any::<u64>()) {
        let mut generator = AppGenerator::new(config.clone(), seed);
        let app = generator.generate("prop");
        let n = app.task_count() as u32;
        prop_assert!(n >= config.min_tasks());
        prop_assert!(n <= config.max_tasks());
        // No channel may exceed the configured bandwidth range.
        for c in app.channels() {
            prop_assert!(config.channel_bandwidth.contains(&c.bandwidth()));
        }
        // All demands fit their target element kind's capacity.
        for task in app.tasks() {
            for imp in task.implementations() {
                prop_assert!(default_capacity(imp.target()).fits(&imp.requires()));
            }
        }
    }

    /// Same seed, same output; the stream is self-contained.
    #[test]
    fn generation_is_reproducible(config in config(), seed in any::<u64>()) {
        let mut a = AppGenerator::new(config.clone(), seed);
        let mut b = AppGenerator::new(config, seed);
        for i in 0..3 {
            prop_assert_eq!(a.generate(format!("x{i}")), b.generate(format!("x{i}")));
        }
    }

    /// Generated graphs are acyclic (channels flow strictly forward in id
    /// order), so deadlock-free under the SDF model with any buffering.
    #[test]
    fn generated_graphs_are_acyclic(config in config(), seed in any::<u64>()) {
        let app = AppGenerator::new(config, seed).generate("dag");
        for c in app.channels() {
            prop_assert!(c.src() < c.dst());
        }
    }

    /// The beamformer keeps its invariants across the parameter space.
    #[test]
    fn beamformer_parameter_space(load in 501u64..1000, stream in 1u64..500, feed in 1u64..500) {
        let app = beamforming_app_with(BeamformingConfig {
            dsp_load: load,
            stream_bandwidth: stream,
            feed_bandwidth: feed,
            max_period_cycles: None,
        });
        prop_assert_eq!(app.task_count(), 53);
        prop_assert!(app.is_connected());
        let dsp_tasks = app
            .tasks()
            .filter(|t| t.implementations()[0].target() == kairos_platform::ElementKind::Dsp)
            .count();
        prop_assert_eq!(dsp_tasks, 45);
    }
}

#[test]
fn dataset_sizes_match_their_class_bounds() {
    for spec in DatasetSpec::all() {
        let (lo, hi) = spec.size.task_bounds();
        for app in generate_dataset(spec, 50, 0xD5) {
            let n = app.task_count() as u32;
            assert!(n >= lo && n <= hi, "{spec}: {n} outside [{lo},{hi}]");
        }
    }
}

#[test]
fn orientations_separate_cleanly() {
    let util_of = |o: Orientation| {
        let spec = DatasetSpec { orientation: o, size: SizeClass::Medium };
        let apps = generate_dataset(spec, 20, 0xD6);
        let mut total = 0.0;
        let mut n = 0;
        for app in &apps {
            for task in app.tasks() {
                let imp = &task.implementations()[0];
                total += imp.requires().utilisation_of(&default_capacity(imp.target()));
                n += 1;
            }
        }
        total / n as f64
    };
    let comm = util_of(Orientation::Communication);
    let comp = util_of(Orientation::Computation);
    assert!(comp > comm + 0.2, "orientation bands overlap: comm {comm:.2} comp {comp:.2}");
}
