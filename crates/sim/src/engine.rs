//! The discrete-event simulation engine.
//!
//! [`Simulator`] drives the Kairos run-time through a [`Scenario`]: a
//! binary-heap event queue ordered by `(time, sequence)` advances a
//! virtual clock over application arrivals, departures, scripted element
//! faults and repairs, and periodic metric samples. Arrivals chain within
//! each phase — processing one arrival schedules the next — so the whole
//! run is a pure function of the scenario (seed included), which the
//! determinism tests rely on.
//!
//! All scenario traffic flows through the unified
//! [`ResourceService`](kairos_svc::ResourceService) API: every simulation
//! action is a typed [`Command`](kairos_svc::Command) (arrivals are
//! `Admit` requests — batched waves go through `submit_batch` as one
//! operation — departures are `Release`, scripted faults are
//! `InjectFault`, and so on), and every accounting decision is driven by
//! the service's single [`Event`](kairos_svc::Event) stream. Scenarios
//! with an [`AdmitPolicy`](kairos_admitd::AdmitPolicy) get a queued
//! service (requests queue under their phase's priority class, retry on
//! capacity events, time out, and are flushed at the horizon — all of it
//! surfacing in the report's queue section); scenarios without one get a
//! direct service that admits or rejects immediately, the paper's
//! behaviour. The engine itself no longer touches `Admitd` or
//! `kairos_reloc` — the service owns that glue.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;

use kairos_admitd::PriorityClass;
use kairos_app::Application;
use kairos_appgen::{WorkloadMix, WorkloadSampler};
use kairos_cluster::ClusterBuilder;
use kairos_core::{CacheConfig, Kairos, KairosConfig, Phase};
use kairos_gateway::{Gateway, GatewayConfig, GatewayStats};
use kairos_platform::{AppId, ElementId};
use kairos_svc::{
    CapacityEvent, Command, Event, RejectCause, Request, ResourceService, ServiceBuilder,
};
use kairos_telemetry::{Counter, Gauge, Histogram, Telemetry, TelemetryConfig};
use kairos_watch::{EnergyMeter, Watcher};

use crate::report::{
    CacheReport, ClassQueueStats, ClassTraceStats, GatewayReport, PhaseStats, QueueReport,
    SamplePoint, SimReport, Totals, TraceReport,
};
use crate::scenario::Scenario;

/// What happens at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimEvent {
    /// A wave of applications of workload phase `phase` arrives.
    Arrival { phase: usize },
    /// An admitted application's lifetime expires.
    Departure { app: AppId },
    /// Scripted fault `fault` (index into the scenario) strikes.
    Fault { fault: usize },
    /// A previously failed element recovers.
    Repair { element: ElementId },
    /// Queued requests whose deadline has passed are dropped.
    QueueExpiry,
    /// A defragmenting compaction sweep runs (`Scenario::defrag`).
    Defrag,
    /// A cross-shard rebalancing sweep runs (`ClusterSpec::rebalance`).
    Rebalance,
    /// A metric time-series sample is taken.
    Sample,
}

/// An event at a virtual time; `seq` breaks ties deterministically in
/// schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: u64,
    seq: u64,
    event: SimEvent,
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A currently admitted application and its scheduled departure.
#[derive(Debug, Clone)]
struct LiveApp {
    app: Application,
    departs_at: Option<u64>,
    class: PriorityClass,
}

/// Where a service request came from; decides which accounting bucket
/// its terminal outcome lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// A first-class workload arrival.
    Fresh,
    /// The re-submission of a fault-evicted application.
    Fault,
    /// The requeue of a preemption victim.
    Preempt,
}

/// A request somewhere in the service, keyed by its service ticket.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Lifetime drawn at arrival; departure is scheduled from the
    /// admission instant.
    lifetime: Option<u64>,
    /// Fixed departure instant (fault and preemption re-submissions keep
    /// their original departure time).
    fixed_departure: Option<u64>,
    /// Workload phase the request arrived in (accounting attribution).
    phase: usize,
    /// How the request entered the service.
    origin: Origin,
}

/// Per-workload-phase accumulator.
#[derive(Debug, Default, Clone)]
struct PhaseAccum {
    arrivals: u64,
    admissions: u64,
    rejections: u64,
    departures: u64,
}

/// The run totals, tallied on the workspace's one counter implementation
/// ([`kairos_telemetry::Counter`]). With telemetry enabled the handles
/// are the registry's own `kairos.sim.total.*` counters, so the report's
/// `totals` section and the embedded metric snapshot are two views of
/// the same atomics; disabled runs tally on standalone counters with
/// identical behaviour. [`TotalsTally::materialize`] freezes the handles
/// into the report's plain-integer [`Totals`], byte-identical to the
/// pre-registry accounting.
#[derive(Debug)]
struct TotalsTally {
    arrivals: Arc<Counter>,
    admissions: Arc<Counter>,
    rejections: Arc<Counter>,
    departures: Arc<Counter>,
    faults_injected: Arc<Counter>,
    repairs: Arc<Counter>,
    evictions: Arc<Counter>,
    readmissions: Arc<Counter>,
    lost_to_faults: Arc<Counter>,
    preemptions: Arc<Counter>,
    preempt_readmissions: Arc<Counter>,
    lost_to_preemption: Arc<Counter>,
    migrations: Arc<Counter>,
    defrag_moves: Arc<Counter>,
    rebalance_moves: Arc<Counter>,
}

impl TotalsTally {
    fn new(telemetry: &Telemetry) -> Self {
        let counter = |name: &str| match telemetry.registry() {
            Some(registry) => registry.counter(name),
            None => Arc::new(Counter::new()),
        };
        TotalsTally {
            arrivals: counter("kairos.sim.total.arrivals"),
            admissions: counter("kairos.sim.total.admissions"),
            rejections: counter("kairos.sim.total.rejections"),
            departures: counter("kairos.sim.total.departures"),
            faults_injected: counter("kairos.sim.total.faults_injected"),
            repairs: counter("kairos.sim.total.repairs"),
            evictions: counter("kairos.sim.total.evictions"),
            readmissions: counter("kairos.sim.total.readmissions"),
            lost_to_faults: counter("kairos.sim.total.lost_to_faults"),
            preemptions: counter("kairos.sim.total.preemptions"),
            preempt_readmissions: counter("kairos.sim.total.preempt_readmissions"),
            lost_to_preemption: counter("kairos.sim.total.lost_to_preemption"),
            migrations: counter("kairos.sim.total.migrations"),
            defrag_moves: counter("kairos.sim.total.defrag_moves"),
            rebalance_moves: counter("kairos.sim.total.rebalance_moves"),
        }
    }

    fn materialize(&self) -> Totals {
        Totals {
            arrivals: self.arrivals.get(),
            admissions: self.admissions.get(),
            rejections: self.rejections.get(),
            departures: self.departures.get(),
            faults_injected: self.faults_injected.get(),
            repairs: self.repairs.get(),
            evictions: self.evictions.get(),
            readmissions: self.readmissions.get(),
            lost_to_faults: self.lost_to_faults.get(),
            preemptions: self.preemptions.get(),
            preempt_readmissions: self.preempt_readmissions.get(),
            lost_to_preemption: self.lost_to_preemption.get(),
            migrations: self.migrations.get(),
            defrag_moves: self.defrag_moves.get(),
            rebalance_moves: self.rebalance_moves.get(),
        }
    }
}

/// Bucket bounds of the per-class wait histograms, in virtual ticks:
/// powers of two spanning zero-wait door admissions up to the longest
/// deadline any catalog scenario allows.
const WAIT_HIST_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Running admission-queue statistics. The monotonic counters and the
/// depth high-water mark live on registry instruments
/// (`kairos.sim.queue.*`) exactly like [`TotalsTally`]; the wait sums
/// and per-class arrays feed derived report fields (means, per-class
/// rows) and stay plain integers.
#[derive(Debug)]
struct QueueAccum {
    queued: Arc<Counter>,
    admitted_immediate: Arc<Counter>,
    admitted_after_wait: Arc<Counter>,
    retry_attempts: Arc<Counter>,
    rejected_queue_full: Arc<Counter>,
    rejected_permanent: Arc<Counter>,
    dropped_timeout: Arc<Counter>,
    dropped_retries_exhausted: Arc<Counter>,
    flushed_at_shutdown: Arc<Counter>,
    max_depth: Arc<Gauge>,
    total_wait: u64,
    wait_samples: u64,
    max_wait: u64,
    class_queued: [u64; 4],
    class_admitted: [u64; 4],
    class_dropped: [u64; 4],
    class_wait: [u64; 4],
    class_wait_samples: [u64; 4],
    /// Per-class wait histograms backing the report's interpolated
    /// percentiles. Standalone instruments, never registered: they must
    /// exist — and record identically — whether or not the scenario
    /// enables telemetry, so percentile fields cannot become an observer
    /// effect.
    class_wait_hist: [Histogram; 4],
}

impl QueueAccum {
    fn new(telemetry: &Telemetry) -> Self {
        let counter = |name: &str| match telemetry.registry() {
            Some(registry) => registry.counter(name),
            None => Arc::new(Counter::new()),
        };
        let max_depth = match telemetry.registry() {
            Some(registry) => registry.gauge("kairos.sim.queue.max_depth"),
            None => Arc::new(Gauge::new()),
        };
        QueueAccum {
            queued: counter("kairos.sim.queue.queued"),
            admitted_immediate: counter("kairos.sim.queue.admitted_immediate"),
            admitted_after_wait: counter("kairos.sim.queue.admitted_after_wait"),
            retry_attempts: counter("kairos.sim.queue.retry_attempts"),
            rejected_queue_full: counter("kairos.sim.queue.rejected.queue_full"),
            rejected_permanent: counter("kairos.sim.queue.rejected.permanent"),
            dropped_timeout: counter("kairos.sim.queue.dropped.timeout"),
            dropped_retries_exhausted: counter("kairos.sim.queue.dropped.retries_exhausted"),
            flushed_at_shutdown: counter("kairos.sim.queue.flushed_at_shutdown"),
            max_depth,
            total_wait: 0,
            wait_samples: 0,
            max_wait: 0,
            class_queued: [0; 4],
            class_admitted: [0; 4],
            class_dropped: [0; 4],
            class_wait: [0; 4],
            class_wait_samples: [0; 4],
            class_wait_hist: std::array::from_fn(|_| Histogram::new(WAIT_HIST_BOUNDS)),
        }
    }
}

/// Drives the Kairos run-time through one scenario run.
///
/// # Examples
///
/// ```
/// use kairos_sim::{Scenario, Simulator};
///
/// let scenario = Scenario::by_name("steady-churn").unwrap();
/// let report = Simulator::new(scenario).unwrap().run();
/// assert!(report.totals.arrivals > 0);
/// assert_eq!(report.totals.arrivals, report.totals.admissions + report.totals.rejections);
/// ```
#[derive(Debug)]
pub struct Simulator {
    scenario: Scenario,
    service: Box<dyn ResourceService>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
    ran: bool,
    samplers: Vec<Option<WorkloadSampler>>,
    phase_starts: Vec<u64>,
    live: HashMap<AppId, LiveApp>,
    pending: HashMap<u64, Pending>,
    /// Cross-shard rebalancing re-admits an application under a fresh id;
    /// departures scheduled under the old id resolve through this chain.
    renames: HashMap<AppId, AppId>,
    /// Live handle onto the gateway's serving counters when the scenario
    /// runs behind one; the boxed service hides the concrete type.
    gateway_stats: Option<GatewayStats>,
    gateway_lanes: usize,
    /// Energy meter over the sampled element activity; runs when the
    /// scenario sets `power` or `watch`. A pure observer.
    energy: Option<EnergyMeter>,
    /// Monitor-rule evaluator over the event and sample streams; runs
    /// when the scenario sets `watch`. A pure observer.
    watch: Option<Watcher>,
    telemetry: Telemetry,
    totals: TotalsTally,
    rejections_by_phase: [u64; 4],
    phase_accum: Vec<PhaseAccum>,
    queue_accum: QueueAccum,
    samples: Vec<SamplePoint>,
}

impl Simulator {
    /// A simulator for `scenario` with the default manager configuration.
    ///
    /// # Errors
    ///
    /// The scenario's [`Scenario::validate`] error, if any.
    pub fn new(scenario: Scenario) -> Result<Self, String> {
        Simulator::with_config(scenario, KairosConfig::default())
    }

    /// A simulator with an explicit manager configuration.
    ///
    /// The engine always forces [`KairosConfig::deterministic`]: reports
    /// must be pure functions of the scenario, so the pipeline runs on
    /// the zero phase clock regardless of what `config` says.
    ///
    /// # Errors
    ///
    /// The scenario's [`Scenario::validate`] error, if any.
    pub fn with_config(scenario: Scenario, mut config: KairosConfig) -> Result<Self, String> {
        scenario.validate()?;
        // The scenario's cache flag overrides the explicit configuration
        // in both directions: reports must be pure functions of the
        // scenario, and `Scenario::cache` is part of the scenario.
        config.cache = scenario.cache.then(CacheConfig::default);
        // One telemetry hub for the whole stack. The engine's forced
        // deterministic clock keeps the hub's default zero-duration mode:
        // every instrument below the service boundary records pure
        // op-sequence functions, so enabling telemetry cannot perturb a
        // report beyond adding its snapshot section.
        let telemetry = if scenario.telemetry || scenario.trace {
            Telemetry::new(TelemetryConfig {
                tracing: scenario.trace,
                ..TelemetryConfig::default()
            })
        } else {
            Telemetry::disabled()
        };
        let inner: Box<dyn ResourceService + Send> = match &scenario.cluster {
            None => {
                let mut builder = ServiceBuilder::new(scenario.platform.build())
                    .config(config)
                    .deterministic(true)
                    .telemetry(telemetry.clone());
                if let Some(policy) = &scenario.admission {
                    builder = builder.admission(*policy);
                }
                Box::new(builder.build().map_err(|e| format!("admission policy: {e}"))?)
            }
            Some(spec) => {
                let mut builder = ClusterBuilder::new(scenario.platform.build(), spec.shards)
                    .config(config)
                    .deterministic(true)
                    .telemetry(telemetry.clone())
                    .placement(spec.policy.build());
                if let Some(policy) = &scenario.admission {
                    builder = builder.admission(*policy);
                }
                Box::new(builder.build().map_err(|e| format!("cluster: {e}"))?)
            }
        };
        // The gateway wraps the (possibly clustered) service behind the
        // same `ResourceService` surface; the engine keeps a stats handle
        // so `finalize` can embed the serving counters after the service
        // is consumed by the run.
        let mut gateway_stats = None;
        let mut gateway_lanes = 0;
        let service: Box<dyn ResourceService> = match &scenario.gateway {
            None => inner,
            Some(spec) => {
                let gateway = Gateway::with_telemetry(
                    inner,
                    GatewayConfig {
                        channel_capacity: spec.channel_capacity,
                        coalesce: spec.coalesce,
                    },
                    telemetry.clone(),
                );
                gateway_stats = Some(gateway.stats_handle());
                gateway_lanes = gateway.lane_count();
                Box::new(gateway)
            }
        };
        // One independent sampler per phase, seeded off the scenario seed so
        // adding a phase does not disturb the streams of the others.
        let samplers = scenario
            .phases
            .iter()
            .enumerate()
            .map(|(i, phase)| {
                phase.has_arrivals().then(|| {
                    WorkloadSampler::new(
                        format!("{}-p{i}", scenario.name),
                        WorkloadMix::new(phase.mix.clone()),
                        scenario.seed.wrapping_add(0x9E3779B9 * (i as u64 + 1)),
                    )
                })
            })
            .collect();
        let mut phase_starts = Vec::with_capacity(scenario.phases.len());
        let mut t = 0;
        for phase in &scenario.phases {
            phase_starts.push(t);
            t += phase.duration;
        }
        let phase_accum = vec![PhaseAccum::default(); scenario.phases.len()];
        // The watch layer observes the same streams the report is built
        // from and never feeds anything back: a watched run differs from
        // an unwatched one only in its `energy`/`health` report sections
        // (`tests/watch_observer.rs` pins that). A watched scenario
        // meters implicitly; `power` alone meters without monitors.
        let energy = (scenario.power.is_some() || scenario.watch.is_some()).then(|| {
            EnergyMeter::new(scenario.power.clone().unwrap_or_default().model(), &telemetry)
        });
        let watch = scenario.watch.map(|spec| Watcher::new(spec.policy(), &telemetry));
        Ok(Simulator {
            scenario,
            service,
            queue: BinaryHeap::new(),
            next_seq: 0,
            ran: false,
            samplers,
            phase_starts,
            live: HashMap::new(),
            pending: HashMap::new(),
            renames: HashMap::new(),
            gateway_stats,
            gateway_lanes,
            energy,
            watch,
            totals: TotalsTally::new(&telemetry),
            rejections_by_phase: [0; 4],
            phase_accum,
            queue_accum: QueueAccum::new(&telemetry),
            telemetry,
            samples: Vec::new(),
        })
    }

    /// The managed platform's resource manager (for post-run inspection).
    /// For a clustered scenario this is the *first shard's* manager; use
    /// [`ResourceService::occupancy`] on [`Simulator::service`] for
    /// whole-service metrics.
    pub fn manager(&self) -> &Kairos {
        self.service.kairos()
    }

    /// The service the engine drives all scenario traffic through (the
    /// monolithic `KairosService`, or a `kairos-cluster` shard fleet when
    /// the scenario sets [`crate::ClusterSpec`]).
    pub fn service(&self) -> &dyn ResourceService {
        self.service.as_ref()
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The run's telemetry hub: [`Telemetry::disabled`] unless the
    /// scenario sets [`Scenario::telemetry`], in which case it is the
    /// parent handle every service layer (and the engine's own tallies)
    /// records through — use it to render the text exposition or dump
    /// flight recorders after a run.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Whether the scenario runs with an admission queue (queue
    /// statistics are only accumulated then).
    fn queue_enabled(&self) -> bool {
        self.scenario.admission.is_some()
    }

    fn schedule(&mut self, at: u64, event: SimEvent) {
        if at > self.scenario.horizon() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, event }));
    }

    /// The workload phase containing tick `t` (the last phase for the
    /// horizon tick itself).
    fn phase_at(&self, t: u64) -> usize {
        match self.phase_starts.binary_search(&t) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    fn phase_end(&self, phase: usize) -> u64 {
        self.phase_starts[phase] + self.scenario.phases[phase].duration
    }

    /// Runs the scenario to its horizon and aggregates the report. The
    /// simulator stays available afterwards for [`Self::manager`]
    /// inspection.
    ///
    /// # Panics
    ///
    /// Panics when called a second time: the service and samplers are
    /// mid-stream after a run, so a rerun would produce a corrupt report.
    /// Build a fresh `Simulator` instead (identical scenarios reproduce
    /// identical runs).
    pub fn run(&mut self) -> SimReport {
        assert!(!self.ran, "Simulator::run may only be called once; build a fresh Simulator");
        self.ran = true;
        // Seed the queue: samples over the whole horizon, the first arrival
        // of every arrival phase, and the scripted faults.
        let horizon = self.scenario.horizon();
        let mut t = 0;
        while t <= horizon {
            self.schedule(t, SimEvent::Sample);
            t += self.scenario.sample_period;
        }
        for phase in 0..self.scenario.phases.len() {
            if self.samplers[phase].is_some() {
                let start = self.phase_starts[phase];
                let mean = self.scenario.phases[phase].mean_interarrival;
                let dist = self.scenario.phases[phase].arrival;
                let gap =
                    self.samplers[phase].as_mut().expect("checked").next_delay_with(dist, mean);
                let at = start + gap;
                if at < self.phase_end(phase) {
                    self.schedule(at, SimEvent::Arrival { phase });
                }
            }
        }
        let fault_times: Vec<u64> = self.scenario.faults.iter().map(|f| f.at).collect();
        for (i, at) in fault_times.into_iter().enumerate() {
            self.schedule(at, SimEvent::Fault { fault: i });
        }
        if let Some(defrag) = self.scenario.defrag {
            let mut t = defrag.period;
            while t <= horizon {
                self.schedule(t, SimEvent::Defrag);
                t += defrag.period;
            }
        }
        if let Some(rebalance) = self.scenario.cluster.and_then(|c| c.rebalance) {
            let mut t = rebalance.period;
            while t <= horizon {
                self.schedule(t, SimEvent::Rebalance);
                t += rebalance.period;
            }
        }

        while let Some(Reverse(Scheduled { at, event, .. })) = self.queue.pop() {
            match event {
                SimEvent::Arrival { phase } => self.on_arrival(at, phase),
                SimEvent::Departure { app } => self.on_departure(at, app),
                SimEvent::Fault { fault } => self.on_fault(at, fault),
                SimEvent::Repair { element } => self.on_repair(at, element),
                SimEvent::QueueExpiry => {
                    let events = self.service.pump(CapacityEvent::Tick { now: at });
                    self.apply_events(at, events);
                }
                SimEvent::Defrag => self.on_defrag(at),
                SimEvent::Rebalance => self.on_rebalance(at),
                SimEvent::Sample => {
                    self.samples.push(SamplePoint {
                        at,
                        occupancy: self.service.occupancy(),
                        queue_depth: self.service.queue_depth() as u64,
                    });
                    self.on_watch_sample(at);
                }
            }
        }

        // Flush whatever is still queued at the horizon so every arrival
        // reaches exactly one terminal outcome.
        let events = self.service.pump(CapacityEvent::Shutdown { now: horizon });
        self.apply_events(horizon, events);

        self.finalize()
    }

    fn on_arrival(&mut self, at: u64, phase: usize) {
        let spec_mean_lifetime = self.scenario.phases[phase].mean_lifetime;
        let mean_gap = self.scenario.phases[phase].mean_interarrival;
        let dist = self.scenario.phases[phase].arrival;
        let wave = self.scenario.phases[phase].batch.max(1);
        let class = self.scenario.phases[phase].priority;
        let sampler = self.samplers[phase].as_mut().expect("arrival phases have samplers");
        // Draw the whole wave, then the gap to the next one — one fixed
        // consumption order keeps the random streams stable.
        let mut arrivals: Vec<(Application, Option<u64>)> = Vec::with_capacity(wave as usize);
        for _ in 0..wave {
            let app = sampler.next_app();
            let lifetime = if spec_mean_lifetime > 0 {
                Some(sampler.next_delay(spec_mean_lifetime))
            } else {
                None
            };
            arrivals.push((app, lifetime));
        }
        let next_gap = sampler.next_delay_with(dist, mean_gap);

        self.totals.arrivals.add(wave);
        self.phase_accum[phase].arrivals += wave;
        if wave == 1 {
            let (app, lifetime) = arrivals.pop().expect("wave of one");
            let ticket = self.service.submit(Request::admit(at, app, class));
            self.pending.insert(
                ticket.0,
                Pending { lifetime, fixed_departure: None, phase, origin: Origin::Fresh },
            );
        } else {
            // A synchronized wave: admitted through the batched service
            // path as one operation.
            let lifetimes: Vec<Option<u64>> = arrivals.iter().map(|(_, l)| *l).collect();
            let requests: Vec<Request> =
                arrivals.into_iter().map(|(app, _)| Request::admit(at, app, class)).collect();
            let tickets = self.service.submit_batch(requests);
            for (ticket, lifetime) in tickets.into_iter().zip(lifetimes) {
                self.pending.insert(
                    ticket.0,
                    Pending { lifetime, fixed_departure: None, phase, origin: Origin::Fresh },
                );
            }
        }
        let events = self.service.take_events();
        self.apply_events(at, events);

        let next = at + next_gap;
        if next < self.phase_end(phase) {
            self.schedule(next, SimEvent::Arrival { phase });
        }
    }

    fn on_departure(&mut self, at: u64, app: AppId) {
        // A rebalance sweep may have moved the app to another shard since
        // this departure was scheduled, re-keying it; chase the renames to
        // its current id. The app may also already be gone entirely:
        // evicted by a fault and not re-admitted, or re-admitted under a
        // fresh id. The service reports `found: false` then and the
        // release is a no-op.
        let app = self.resolve(app);
        self.service.submit(Request::release(at, app));
        let events = self.service.take_events();
        self.apply_events(at, events);
    }

    /// The current id of `app`, chasing cross-shard rebalance renames
    /// (ids are never reused, so the chain cannot cycle).
    fn resolve(&self, mut app: AppId) -> AppId {
        while let Some(&next) = self.renames.get(&app) {
            app = next;
        }
        app
    }

    /// One cross-shard rebalancing sweep over the clustered platform.
    fn on_rebalance(&mut self, at: u64) {
        let max_moves = self
            .scenario
            .cluster
            .and_then(|c| c.rebalance)
            .expect("Rebalance events need a rebalance spec")
            .max_moves;
        self.service.submit(Request::new(at, Command::Rebalance { max_moves }));
        let events = self.service.take_events();
        self.apply_events(at, events);
    }

    /// One defragmenting compaction sweep over the managed platform.
    /// Moves strictly reduce external fragmentation and are bounded by the
    /// scenario's `max_moves`; on a queued service a sweep that moved
    /// anything is a capacity event, so its drain may admit waiters into
    /// the newly contiguous room.
    fn on_defrag(&mut self, at: u64) {
        let max_moves = self.scenario.defrag.expect("Defrag events need a defrag spec").max_moves;
        self.service.submit(Request::new(at, Command::Defrag { max_moves }));
        let events = self.service.take_events();
        self.apply_events(at, events);
    }

    fn on_repair(&mut self, at: u64, element: ElementId) {
        self.totals.repairs.inc();
        self.service.submit(Request::new(at, Command::Repair { element }));
        let events = self.service.take_events();
        self.apply_events(at, events);
    }

    fn on_fault(&mut self, at: u64, fault: usize) {
        let spec = self.scenario.faults[fault];
        let element = ElementId(spec.element);
        self.totals.faults_injected.inc();
        if let Some(after) = spec.repair_after {
            self.schedule(at + after, SimEvent::Repair { element });
        }
        self.service.submit(Request::new(at, Command::InjectFault { element }));
        let events = self.service.take_events();
        let victims: Vec<AppId> = events
            .iter()
            .find_map(|e| match e {
                Event::ElementFailed { evicted, .. } => Some(evicted.clone()),
                _ => None,
            })
            .expect("a fault command reports ElementFailed");
        self.apply_events(at, events);
        for victim in victims {
            let Some(live) = self.live.remove(&victim) else { continue };
            if !self.scenario.readmit_evicted {
                self.totals.lost_to_faults.inc();
                continue;
            }
            // Evicted applications are offered for re-admission under
            // their original class, keeping their departure instant: an
            // immediate outcome on a direct service, a queued retryable
            // request on a queued one.
            let ticket = self.service.submit(Request::admit(at, live.app.clone(), live.class));
            self.pending.insert(
                ticket.0,
                Pending {
                    lifetime: None,
                    fixed_departure: live.departs_at,
                    phase: self.phase_at(at),
                    origin: Origin::Fault,
                },
            );
            let events = self.service.take_events();
            self.apply_events(at, events);
        }
    }

    /// Folds one batch of service events into the run's accounting:
    /// admissions (scheduling departures), retries, rejections, releases,
    /// evictions and queue-depth high-water marks.
    ///
    /// Queue statistics (`QueueReport`) count *first-class requests only*:
    /// the re-submissions of fault-evicted applications surface under
    /// `readmissions`/`lost_to_faults` exactly as on the direct path, so
    /// `queued == admitted + dropped` style balances hold with or without
    /// faults in the scenario.
    fn apply_events(&mut self, at: u64, events: Vec<Event>) {
        // The watcher reads the stream before the engine consumes it —
        // strictly read-only, so watched accounting stays bit-identical.
        if let Some(watch) = &mut self.watch {
            watch.observe_events(at, &events);
        }
        let max_wait = self.scenario.admission.as_ref().and_then(|p| p.max_wait);
        let queue_enabled = self.queue_enabled();
        for event in events {
            match event {
                Event::Queued { ticket, class, depth } => {
                    let info = self.pending[&ticket.0];
                    if info.origin == Origin::Fresh {
                        self.queue_accum.queued.inc();
                        self.queue_accum.class_queued[class.index()] += 1;
                    }
                    self.queue_accum.max_depth.set_max(depth as i64);
                    if let Some(wait) = max_wait {
                        self.schedule(at + wait, SimEvent::QueueExpiry);
                    }
                }
                Event::Admitted { ticket, class, app, report, waited, .. } => {
                    let info =
                        self.pending.remove(&ticket.0).expect("admitted tickets are pending");
                    match info.origin {
                        Origin::Fault => self.totals.readmissions.inc(),
                        Origin::Preempt => self.totals.preempt_readmissions.inc(),
                        Origin::Fresh => {
                            self.totals.admissions.inc();
                            self.phase_accum[info.phase].admissions += 1;
                            if queue_enabled {
                                if waited == 0 {
                                    self.queue_accum.admitted_immediate.inc();
                                } else {
                                    self.queue_accum.admitted_after_wait.inc();
                                }
                                self.queue_accum.class_admitted[class.index()] += 1;
                                self.record_wait(class, waited);
                            }
                        }
                    }
                    let departs_at = info.fixed_departure.or(info.lifetime.map(|l| at + l));
                    if let Some(departure) = departs_at {
                        // A re-admitted app whose departure is overdue
                        // leaves immediately (next tick processing order).
                        self.schedule(
                            departure.max(at),
                            SimEvent::Departure { app: report.app_id },
                        );
                    }
                    self.live.insert(report.app_id, LiveApp { app: *app, departs_at, class });
                }
                Event::AttemptFailed { ticket, .. } => {
                    let first_class =
                        self.pending.get(&ticket.0).is_none_or(|p| p.origin == Origin::Fresh);
                    if first_class {
                        self.queue_accum.retry_attempts.inc();
                    }
                }
                Event::Preempted { victim, requeued_as, .. } => {
                    // The victim leaves the platform but not the system:
                    // its requeue ticket inherits the departure schedule,
                    // exactly like a fault-evicted re-submission.
                    let live = self.live.remove(&victim).expect("preemption victims are live apps");
                    self.totals.preemptions.inc();
                    self.pending.insert(
                        requeued_as.0,
                        Pending {
                            lifetime: None,
                            fixed_departure: live.departs_at,
                            phase: self.phase_at(at),
                            origin: Origin::Preempt,
                        },
                    );
                }
                Event::Migrated { .. } => {
                    // The app keeps running under the same id; only the
                    // placement changed. (Defrag sweeps report their moves
                    // in `Event::Defragged` counts, not here.)
                    self.totals.migrations.inc();
                }
                Event::MigrationFailed { .. } => {
                    // The engine issues no `Migrate` commands of its own;
                    // a failed preemption-migration falls back to eviction
                    // inside the service and never surfaces here.
                }
                Event::Rejected { ticket, class, cause, waited } => {
                    let info =
                        self.pending.remove(&ticket.0).expect("rejected tickets are pending");
                    match info.origin {
                        Origin::Fault => {
                            self.totals.lost_to_faults.inc();
                            continue;
                        }
                        Origin::Preempt => {
                            self.totals.lost_to_preemption.inc();
                            continue;
                        }
                        Origin::Fresh => {}
                    }
                    self.totals.rejections.inc();
                    self.phase_accum[info.phase].rejections += 1;
                    if let RejectCause::Refused { phase } = cause {
                        // The direct path's immediate rejection: pipeline
                        // attribution only, no queue involved.
                        self.rejections_by_phase[phase_index(phase)] += 1;
                        continue;
                    }
                    self.queue_accum.class_dropped[class.index()] += 1;
                    match cause {
                        RejectCause::Refused { .. } => unreachable!("handled above"),
                        RejectCause::QueueFull => self.queue_accum.rejected_queue_full.inc(),
                        RejectCause::Permanent { phase } => {
                            self.queue_accum.rejected_permanent.inc();
                            self.rejections_by_phase[phase_index(phase)] += 1;
                            self.record_wait(class, waited);
                        }
                        RejectCause::Timeout => {
                            self.queue_accum.dropped_timeout.inc();
                            self.record_wait(class, waited);
                        }
                        RejectCause::RetriesExhausted { phase } => {
                            self.queue_accum.dropped_retries_exhausted.inc();
                            self.rejections_by_phase[phase_index(phase)] += 1;
                            self.record_wait(class, waited);
                        }
                        RejectCause::Shutdown => {
                            self.queue_accum.flushed_at_shutdown.inc();
                            self.record_wait(class, waited);
                        }
                    }
                }
                Event::Released { app, found, .. } => {
                    if found {
                        self.live.remove(&app);
                        self.totals.departures.inc();
                        let phase = self.phase_at(at);
                        self.phase_accum[phase].departures += 1;
                    }
                }
                Event::ElementFailed { evicted, .. } => {
                    self.totals.evictions.add(evicted.len() as u64);
                }
                Event::ElementRepaired { .. } => {}
                Event::Defragged { moves, .. } => {
                    self.totals.defrag_moves.add(moves as u64);
                }
                Event::Rebalanced { moves, .. } => {
                    // Each move re-admitted a live application on another
                    // shard under a fresh id; re-key its bookkeeping and
                    // remember the rename so its scheduled departure still
                    // finds it.
                    self.totals.rebalance_moves.add(moves.len() as u64);
                    for (from, to) in moves {
                        let live = self.live.remove(&from).expect("rebalance moves only live apps");
                        self.renames.insert(from, to);
                        self.live.insert(to, live);
                    }
                }
            }
        }
        self.queue_accum.max_depth.set_max(self.service.queue_depth() as i64);
    }

    /// One watch-layer observation at sample instant `at`: the energy
    /// meter integrates the element-activity snapshot, then the watcher
    /// evaluates every armed rule over the queue depth, the activity and
    /// the meter's instantaneous per-package draw.
    fn on_watch_sample(&mut self, at: u64) {
        if self.energy.is_none() && self.watch.is_none() {
            return;
        }
        let activity = self.service.element_activity();
        if let Some(meter) = &mut self.energy {
            meter.observe(at, &activity);
        }
        let depth = self.service.queue_depth();
        let (packages, package_mw): (Vec<String>, Vec<u64>) = match &self.energy {
            Some(meter) => (meter.packages().to_vec(), meter.last_package_mw().to_vec()),
            None => (Vec::new(), Vec::new()),
        };
        if let Some(watch) = &mut self.watch {
            watch.on_sample(at, depth, &activity, &packages, &package_mw);
        }
    }

    fn record_wait(&mut self, class: PriorityClass, waited: u64) {
        self.queue_accum.total_wait += waited;
        self.queue_accum.wait_samples += 1;
        self.queue_accum.max_wait = self.queue_accum.max_wait.max(waited);
        self.queue_accum.class_wait[class.index()] += waited;
        self.queue_accum.class_wait_samples[class.index()] += 1;
        self.queue_accum.class_wait_hist[class.index()].record(waited);
    }

    fn finalize(&mut self) -> SimReport {
        let phases = self
            .scenario
            .phases
            .iter()
            .enumerate()
            .map(|(i, phase)| {
                let accum = &self.phase_accum[i];
                let start = self.phase_starts[i];
                let end = self.phase_end(i);
                let window: Vec<&SamplePoint> =
                    self.samples.iter().filter(|s| s.at >= start && s.at < end).collect();
                let mean = |f: fn(&SamplePoint) -> f64| {
                    if window.is_empty() {
                        0.0
                    } else {
                        window.iter().map(|s| f(s)).sum::<f64>() / window.len() as f64
                    }
                };
                PhaseStats {
                    name: phase.name.clone(),
                    start,
                    end,
                    arrivals: accum.arrivals,
                    admissions: accum.admissions,
                    rejections: accum.rejections,
                    departures: accum.departures,
                    rejection_rate: if accum.arrivals == 0 {
                        0.0
                    } else {
                        accum.rejections as f64 / accum.arrivals as f64
                    },
                    mean_utilisation: mean(|s| s.occupancy.element_utilisation),
                    mean_fragmentation: mean(|s| s.occupancy.external_fragmentation),
                }
            })
            .collect();

        let qa = &self.queue_accum;
        let mean_of = |total: u64, samples: u64| {
            if samples == 0 {
                0.0
            } else {
                total as f64 / samples as f64
            }
        };
        let by_class = PriorityClass::ALL
            .iter()
            .map(|&class| {
                let i = class.index();
                ClassQueueStats {
                    class: class.to_string(),
                    queued: qa.class_queued[i],
                    admitted: qa.class_admitted[i],
                    dropped: qa.class_dropped[i],
                    total_wait: qa.class_wait[i],
                    mean_wait: mean_of(qa.class_wait[i], qa.class_wait_samples[i]),
                    wait_p50: qa.class_wait_hist[i].snapshot().percentile(50),
                    wait_p95: qa.class_wait_hist[i].snapshot().percentile(95),
                    wait_p99: qa.class_wait_hist[i].snapshot().percentile(99),
                }
            })
            .collect();
        let queue = QueueReport {
            enabled: self.scenario.admission.is_some(),
            queued: qa.queued.get(),
            admitted_immediate: qa.admitted_immediate.get(),
            admitted_after_wait: qa.admitted_after_wait.get(),
            retry_attempts: qa.retry_attempts.get(),
            rejected_queue_full: qa.rejected_queue_full.get(),
            rejected_permanent: qa.rejected_permanent.get(),
            dropped_timeout: qa.dropped_timeout.get(),
            dropped_retries_exhausted: qa.dropped_retries_exhausted.get(),
            flushed_at_shutdown: qa.flushed_at_shutdown.get(),
            max_depth: qa.max_depth.get().max(0) as u64,
            mean_wait: mean_of(qa.total_wait, qa.wait_samples),
            max_wait: qa.max_wait,
            by_class,
        };

        SimReport {
            scenario: self.scenario.name.clone(),
            seed: self.scenario.seed,
            horizon: self.scenario.horizon(),
            totals: self.totals.materialize(),
            rejections_by_phase: Phase::ALL
                .iter()
                .enumerate()
                .map(|(i, phase)| (phase.to_string(), self.rejections_by_phase[i]))
                .collect(),
            phases,
            queue,
            samples: std::mem::take(&mut self.samples),
            final_state: self.service.occupancy(),
            // Snapshot last: the occupancy call above is read-only, so
            // every instrument has its final value by now. The registry
            // also runs when only tracing is on (one hub serves both);
            // the report section stays gated on the scenario flag.
            telemetry: if self.scenario.telemetry {
                self.telemetry.registry().map(kairos_telemetry::Registry::snapshot)
            } else {
                None
            },
            trace: self.scenario.trace.then(|| self.trace_report()),
            cache: self.scenario.cache.then(|| {
                let stats = self.service.cache_stats().unwrap_or_default();
                CacheReport {
                    hits: stats.hits,
                    misses: stats.misses,
                    invalidations: stats.invalidations,
                    insertions: stats.insertions,
                    evictions: stats.evictions,
                    points: stats.points,
                }
            }),
            gateway: self.gateway_stats.as_ref().map(|stats| {
                let counters = stats.snapshot();
                GatewayReport {
                    submitted: counters.submitted,
                    forwarded: counters.forwarded,
                    singles: counters.singles,
                    batches: counters.batches,
                    coalesced: counters.coalesced,
                    completions: counters.completions,
                    peak_inflight: counters.peak_inflight,
                    parked: counters.parked,
                    lanes: self.gateway_lanes as u64,
                }
            }),
            energy: self.energy.take().map(|meter| meter.finish(self.scenario.horizon())),
            health: self.watch.take().map(Watcher::finish),
        }
    }

    /// The end-of-run [`TraceReport`]: dumps the trace sink, summarizes
    /// every request trace ([`kairos_telemetry::summarize`]) and
    /// aggregates per-class latency digests plus the critical-path tally.
    fn trace_report(&self) -> TraceReport {
        let spans = self.telemetry.trace_dump();
        let summaries = kairos_telemetry::summarize(&spans);
        let mut critical: BTreeMap<String, u64> = BTreeMap::new();
        let mut latencies: [Vec<u64>; 4] = Default::default();
        for summary in &summaries {
            *critical.entry(summary.critical.clone()).or_insert(0) += 1;
            if let Some(class) = PriorityClass::ALL.iter().find(|c| c.to_string() == summary.class)
            {
                latencies[class.index()].push(summary.latency);
            }
        }
        let by_class = PriorityClass::ALL
            .iter()
            .filter(|class| !latencies[class.index()].is_empty())
            .map(|class| {
                let sorted = &mut latencies[class.index()].clone();
                sorted.sort_unstable();
                ClassTraceStats {
                    class: class.to_string(),
                    count: sorted.len() as u64,
                    p50: nearest_rank(sorted, 50),
                    p95: nearest_rank(sorted, 95),
                    p99: nearest_rank(sorted, 99),
                    max: *sorted.last().expect("non-empty by filter"),
                }
            })
            .collect();
        TraceReport {
            traces: summaries.len() as u64,
            spans: spans.len() as u64,
            by_class,
            critical_paths: critical.into_iter().collect(),
        }
    }
}

/// Exact nearest-rank percentile over an ascending-sorted population
/// (`0` when empty): the value whose rank is `ceil(p × n / 100)`.
fn nearest_rank(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u128 * u128::from(p)).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Pipeline-order index of an admission phase.
fn phase_index(phase: Phase) -> usize {
    match phase {
        Phase::Binding => 0,
        Phase::Mapping => 1,
        Phase::Routing => 2,
        Phase::Validation => 3,
    }
}
