//! The discrete-event simulation engine.
//!
//! [`Simulator`] drives a [`Kairos`] manager through a [`Scenario`]: a
//! binary-heap event queue ordered by `(time, sequence)` advances a virtual
//! clock over application arrivals, departures, scripted element faults and
//! repairs, and periodic metric samples. Arrivals chain within each phase —
//! processing one arrival schedules the next — so the whole run is a pure
//! function of the scenario (seed included), which the determinism tests
//! rely on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use kairos_app::Application;
use kairos_appgen::{WorkloadMix, WorkloadSampler};
use kairos_core::{Kairos, KairosConfig, Phase};
use kairos_platform::{AppId, ElementId};

use crate::report::{PhaseStats, SamplePoint, SimReport, Totals};
use crate::scenario::Scenario;

/// What happens at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimEvent {
    /// An application of workload phase `phase` arrives.
    Arrival { phase: usize },
    /// An admitted application's lifetime expires.
    Departure { app: AppId },
    /// Scripted fault `fault` (index into the scenario) strikes.
    Fault { fault: usize },
    /// A previously failed element recovers.
    Repair { element: ElementId },
    /// A metric time-series sample is taken.
    Sample,
}

/// An event at a virtual time; `seq` breaks ties deterministically in
/// schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: u64,
    seq: u64,
    event: SimEvent,
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A currently admitted application and its scheduled departure.
#[derive(Debug, Clone)]
struct LiveApp {
    app: Application,
    departs_at: Option<u64>,
}

/// Per-workload-phase accumulator.
#[derive(Debug, Default, Clone)]
struct PhaseAccum {
    arrivals: u64,
    admissions: u64,
    rejections: u64,
    departures: u64,
}

/// Drives a [`Kairos`] manager through one scenario run.
///
/// # Examples
///
/// ```
/// use kairos_sim::{Scenario, Simulator};
///
/// let scenario = Scenario::by_name("steady-churn").unwrap();
/// let report = Simulator::new(scenario).unwrap().run();
/// assert!(report.totals.arrivals > 0);
/// assert_eq!(report.totals.arrivals, report.totals.admissions + report.totals.rejections);
/// ```
#[derive(Debug)]
pub struct Simulator {
    scenario: Scenario,
    manager: Kairos,
    queue: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
    ran: bool,
    samplers: Vec<Option<WorkloadSampler>>,
    phase_starts: Vec<u64>,
    live: HashMap<AppId, LiveApp>,
    totals: Totals,
    rejections_by_phase: [u64; 4],
    phase_accum: Vec<PhaseAccum>,
    samples: Vec<SamplePoint>,
}

impl Simulator {
    /// A simulator for `scenario` with the default manager configuration.
    ///
    /// # Errors
    ///
    /// The scenario's [`Scenario::validate`] error, if any.
    pub fn new(scenario: Scenario) -> Result<Self, String> {
        Simulator::with_config(scenario, KairosConfig::default())
    }

    /// A simulator with an explicit manager configuration.
    ///
    /// # Errors
    ///
    /// The scenario's [`Scenario::validate`] error, if any.
    pub fn with_config(scenario: Scenario, config: KairosConfig) -> Result<Self, String> {
        scenario.validate()?;
        let manager = Kairos::new(scenario.platform.build(), config);
        // One independent sampler per phase, seeded off the scenario seed so
        // adding a phase does not disturb the streams of the others.
        let samplers = scenario
            .phases
            .iter()
            .enumerate()
            .map(|(i, phase)| {
                phase.has_arrivals().then(|| {
                    WorkloadSampler::new(
                        format!("{}-p{i}", scenario.name),
                        WorkloadMix::new(phase.mix.clone()),
                        scenario.seed.wrapping_add(0x9E3779B9 * (i as u64 + 1)),
                    )
                })
            })
            .collect();
        let mut phase_starts = Vec::with_capacity(scenario.phases.len());
        let mut t = 0;
        for phase in &scenario.phases {
            phase_starts.push(t);
            t += phase.duration;
        }
        let phase_accum = vec![PhaseAccum::default(); scenario.phases.len()];
        Ok(Simulator {
            scenario,
            manager,
            queue: BinaryHeap::new(),
            next_seq: 0,
            ran: false,
            samplers,
            phase_starts,
            live: HashMap::new(),
            totals: Totals::default(),
            rejections_by_phase: [0; 4],
            phase_accum,
            samples: Vec::new(),
        })
    }

    /// The managed platform's resource manager (for post-run inspection).
    pub fn manager(&self) -> &Kairos {
        &self.manager
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    fn schedule(&mut self, at: u64, event: SimEvent) {
        if at > self.scenario.horizon() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, event }));
    }

    /// The workload phase containing tick `t` (the last phase for the
    /// horizon tick itself).
    fn phase_at(&self, t: u64) -> usize {
        match self.phase_starts.binary_search(&t) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    fn phase_end(&self, phase: usize) -> u64 {
        self.phase_starts[phase] + self.scenario.phases[phase].duration
    }

    /// Runs the scenario to its horizon and aggregates the report. The
    /// simulator stays available afterwards for [`Self::manager`]
    /// inspection.
    ///
    /// # Panics
    ///
    /// Panics when called a second time: the manager and samplers are
    /// mid-stream after a run, so a rerun would produce a corrupt report.
    /// Build a fresh `Simulator` instead (identical scenarios reproduce
    /// identical runs).
    pub fn run(&mut self) -> SimReport {
        assert!(!self.ran, "Simulator::run may only be called once; build a fresh Simulator");
        self.ran = true;
        // Seed the queue: samples over the whole horizon, the first arrival
        // of every arrival phase, and the scripted faults.
        let horizon = self.scenario.horizon();
        let mut t = 0;
        while t <= horizon {
            self.schedule(t, SimEvent::Sample);
            t += self.scenario.sample_period;
        }
        for phase in 0..self.scenario.phases.len() {
            if self.samplers[phase].is_some() {
                let start = self.phase_starts[phase];
                let mean = self.scenario.phases[phase].mean_interarrival;
                let gap = self.samplers[phase].as_mut().expect("checked").next_delay(mean);
                let at = start + gap;
                if at < self.phase_end(phase) {
                    self.schedule(at, SimEvent::Arrival { phase });
                }
            }
        }
        let fault_times: Vec<u64> = self.scenario.faults.iter().map(|f| f.at).collect();
        for (i, at) in fault_times.into_iter().enumerate() {
            self.schedule(at, SimEvent::Fault { fault: i });
        }

        while let Some(Reverse(Scheduled { at, event, .. })) = self.queue.pop() {
            match event {
                SimEvent::Arrival { phase } => self.on_arrival(at, phase),
                SimEvent::Departure { app } => self.on_departure(at, app),
                SimEvent::Fault { fault } => self.on_fault(at, fault),
                SimEvent::Repair { element } => {
                    self.manager.repair_element(element);
                    self.totals.repairs += 1;
                }
                SimEvent::Sample => {
                    self.samples.push(SamplePoint { at, occupancy: self.manager.occupancy() });
                }
            }
        }

        self.finalize()
    }

    fn on_arrival(&mut self, at: u64, phase: usize) {
        let spec_mean_lifetime = self.scenario.phases[phase].mean_lifetime;
        let mean_gap = self.scenario.phases[phase].mean_interarrival;
        let sampler = self.samplers[phase].as_mut().expect("arrival phases have samplers");
        let app = sampler.next_app();
        let lifetime = if spec_mean_lifetime > 0 {
            Some(sampler.next_delay(spec_mean_lifetime))
        } else {
            None
        };
        let next_gap = sampler.next_delay(mean_gap);

        self.totals.arrivals += 1;
        self.phase_accum[phase].arrivals += 1;
        match self.manager.admit(&app) {
            Ok(report) => {
                self.totals.admissions += 1;
                self.phase_accum[phase].admissions += 1;
                let departs_at = lifetime.map(|l| at + l);
                if let Some(departure) = departs_at {
                    self.schedule(departure, SimEvent::Departure { app: report.app_id });
                }
                self.live.insert(report.app_id, LiveApp { app, departs_at });
            }
            Err(failure) => {
                self.totals.rejections += 1;
                self.phase_accum[phase].rejections += 1;
                self.rejections_by_phase[phase_index(failure.phase())] += 1;
            }
        }

        let next = at + next_gap;
        if next < self.phase_end(phase) {
            self.schedule(next, SimEvent::Arrival { phase });
        }
    }

    fn on_departure(&mut self, at: u64, app: AppId) {
        // The app may already be gone: evicted by a fault and not
        // re-admitted, or re-admitted under a fresh id.
        if self.manager.release(app) {
            self.live.remove(&app);
            self.totals.departures += 1;
            let phase = self.phase_at(at);
            self.phase_accum[phase].departures += 1;
        }
    }

    fn on_fault(&mut self, at: u64, fault: usize) {
        let spec = self.scenario.faults[fault];
        let element = ElementId(spec.element);
        let victims = self.manager.fail_element(element);
        self.totals.faults_injected += 1;
        self.totals.evictions += victims.len() as u64;
        if let Some(after) = spec.repair_after {
            self.schedule(at + after, SimEvent::Repair { element });
        }
        for victim in victims {
            let Some(live) = self.live.remove(&victim) else { continue };
            if !self.scenario.readmit_evicted {
                self.totals.lost_to_faults += 1;
                continue;
            }
            // Offer the evicted application for immediate re-admission on
            // the remaining healthy elements, keeping its departure time. A
            // departure falling on this very tick is rescheduled (`>=`, not
            // `>`): the stale Departure event carries the old id and no-ops,
            // and without a fresh one the re-admitted app would never leave.
            match self.manager.admit(&live.app) {
                Ok(report) => {
                    self.totals.readmissions += 1;
                    if let Some(departs_at) = live.departs_at {
                        if departs_at >= at {
                            self.schedule(departs_at, SimEvent::Departure { app: report.app_id });
                        }
                    }
                    self.live.insert(report.app_id, live);
                }
                Err(_) => {
                    self.totals.lost_to_faults += 1;
                }
            }
        }
    }

    fn finalize(&mut self) -> SimReport {
        let phases = self
            .scenario
            .phases
            .iter()
            .enumerate()
            .map(|(i, phase)| {
                let accum = &self.phase_accum[i];
                let start = self.phase_starts[i];
                let end = self.phase_end(i);
                let window: Vec<&SamplePoint> =
                    self.samples.iter().filter(|s| s.at >= start && s.at < end).collect();
                let mean = |f: fn(&SamplePoint) -> f64| {
                    if window.is_empty() {
                        0.0
                    } else {
                        window.iter().map(|s| f(s)).sum::<f64>() / window.len() as f64
                    }
                };
                PhaseStats {
                    name: phase.name.clone(),
                    start,
                    end,
                    arrivals: accum.arrivals,
                    admissions: accum.admissions,
                    rejections: accum.rejections,
                    departures: accum.departures,
                    rejection_rate: if accum.arrivals == 0 {
                        0.0
                    } else {
                        accum.rejections as f64 / accum.arrivals as f64
                    },
                    mean_utilisation: mean(|s| s.occupancy.element_utilisation),
                    mean_fragmentation: mean(|s| s.occupancy.external_fragmentation),
                }
            })
            .collect();

        SimReport {
            scenario: self.scenario.name.clone(),
            seed: self.scenario.seed,
            horizon: self.scenario.horizon(),
            totals: self.totals,
            rejections_by_phase: Phase::ALL
                .iter()
                .enumerate()
                .map(|(i, phase)| (phase.to_string(), self.rejections_by_phase[i]))
                .collect(),
            phases,
            samples: std::mem::take(&mut self.samples),
            final_state: self.manager.occupancy(),
        }
    }
}

/// Pipeline-order index of an admission phase.
fn phase_index(phase: Phase) -> usize {
    match phase {
        Phase::Binding => 0,
        Phase::Mapping => 1,
        Phase::Routing => 2,
        Phase::Validation => 3,
    }
}
