//! Aggregated simulation results.
//!
//! A [`SimReport`] is everything a scenario run leaves behind: total event
//! counts, rejections broken down by the admission pipeline phase that
//! refused them, per-workload-phase statistics, the sampled metric
//! time-series and the final platform state — plus, for scenarios with
//! [`Scenario::telemetry`](crate::Scenario::telemetry) enabled, the full
//! metric snapshot of the run's telemetry registry. Rendering to JSON is
//! deterministic — two runs of the same scenario produce byte-identical
//! reports; the telemetry section holds only name-ordered integers, so
//! it is byte-stable too.

use serde::{Deserialize, Serialize};

use kairos_core::OccupancySnapshot;
use kairos_telemetry::{MetricValue, Snapshot};
use kairos_watch::{EnergyReport, HealthReport, StatusSnapshot, StatusTotals};

use crate::json::Json;

/// Total event counts over a whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Totals {
    /// Applications that arrived (offered for admission).
    pub arrivals: u64,
    /// Successful admissions of fresh arrivals (`arrivals == admissions +
    /// rejections`); re-admissions after faults are counted separately in
    /// [`Totals::readmissions`].
    pub admissions: u64,
    /// Refused admissions.
    pub rejections: u64,
    /// Applications that departed after their lifetime expired.
    pub departures: u64,
    /// Element faults injected.
    pub faults_injected: u64,
    /// Element repairs performed.
    pub repairs: u64,
    /// Applications evicted by element faults.
    pub evictions: u64,
    /// Evicted applications successfully re-admitted elsewhere.
    pub readmissions: u64,
    /// Evicted applications that could not be re-admitted.
    pub lost_to_faults: u64,
    /// Applications evicted by preemption (each re-enters the queue as a
    /// retryable request; `preemptions == preempt_readmissions +
    /// lost_to_preemption` once the run ends).
    pub preemptions: u64,
    /// Preempted applications that made it back in through the queue.
    pub preempt_readmissions: u64,
    /// Preempted applications that never made it back (timeout, retry
    /// exhaustion, full class queue, or still waiting at the horizon).
    pub lost_to_preemption: u64,
    /// Live migrations performed for blocked criticals (the migrated
    /// applications kept running throughout — no eviction).
    pub migrations: u64,
    /// Applications moved by defragmenting compaction sweeps.
    pub defrag_moves: u64,
    /// Applications moved between shards by cross-shard rebalancing
    /// sweeps (each move re-admits the application on another shard
    /// manager under a fresh id; it keeps running throughout).
    pub rebalance_moves: u64,
}

/// Statistics of one workload phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name from the scenario.
    pub name: String,
    /// Phase start tick (inclusive).
    pub start: u64,
    /// Phase end tick (exclusive).
    pub end: u64,
    /// Arrivals during the phase.
    pub arrivals: u64,
    /// Admissions during the phase.
    pub admissions: u64,
    /// Rejections during the phase.
    pub rejections: u64,
    /// Departures during the phase.
    pub departures: u64,
    /// `rejections / arrivals`, `0` for arrival-free phases.
    pub rejection_rate: f64,
    /// Mean element utilisation over the phase's samples.
    pub mean_utilisation: f64,
    /// Mean external fragmentation over the phase's samples.
    pub mean_fragmentation: f64,
}

/// One point of the sampled metric time-series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Virtual time of the sample.
    pub at: u64,
    /// Platform occupancy metrics at that instant.
    pub occupancy: OccupancySnapshot,
    /// Admission-queue depth at that instant (`0` without a queue).
    pub queue_depth: u64,
}

/// Per-priority-class admission-queue statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassQueueStats {
    /// Class name (`critical`, `high`, `normal`, `low`).
    pub class: String,
    /// Requests that entered this class's queue.
    pub queued: u64,
    /// Requests of this class that were admitted.
    pub admitted: u64,
    /// Requests of this class that left unadmitted (any reason).
    pub dropped: u64,
    /// Sum of queue waits over this class's terminal outcomes, in ticks.
    pub total_wait: u64,
    /// Mean queue wait of this class's terminal outcomes, in ticks.
    pub mean_wait: f64,
    /// Median queue wait, bucket-interpolated from the engine's per-class
    /// wait histogram (`0` for classes with no terminal outcomes).
    pub wait_p50: u64,
    /// 95th-percentile queue wait, bucket-interpolated.
    pub wait_p95: u64,
    /// 99th-percentile queue wait, bucket-interpolated.
    pub wait_p99: u64,
}

/// Aggregated admission-queue behaviour over a whole run. All counters
/// are zero for scenarios without an admission policy.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueueReport {
    /// Whether the scenario ran with an admission queue at all.
    pub enabled: bool,
    /// Requests that entered the queue (refused-at-the-door requests are
    /// not queued and count only under `rejected_queue_full`).
    pub queued: u64,
    /// Requests admitted in their submission call, with zero wait.
    pub admitted_immediate: u64,
    /// Requests admitted later, by a capacity-event drain.
    pub admitted_after_wait: u64,
    /// Failed admission attempts of requests that stayed queued.
    pub retry_attempts: u64,
    /// Requests refused because their class was at capacity.
    pub rejected_queue_full: u64,
    /// Requests rejected on a permanent (structural) pipeline failure.
    pub rejected_permanent: u64,
    /// Requests dropped after waiting past the policy deadline.
    pub dropped_timeout: u64,
    /// Requests dropped after exhausting their retry budget.
    pub dropped_retries_exhausted: u64,
    /// Requests still queued when the run ended (flushed at shutdown).
    pub flushed_at_shutdown: u64,
    /// Largest total queue depth observed.
    pub max_depth: u64,
    /// Mean queue wait over all terminal outcomes of queued requests.
    pub mean_wait: f64,
    /// Largest queue wait observed among terminal outcomes.
    pub max_wait: u64,
    /// Per-priority-class breakdown, in drain order.
    pub by_class: Vec<ClassQueueStats>,
}

/// Per-priority-class end-to-end request-latency digest, computed from
/// the run's trace roots (exact nearest-rank percentiles over the sorted
/// root latencies — the population is complete, so no interpolation is
/// needed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassTraceStats {
    /// Class name (`critical`, `high`, `normal`, `low`).
    pub class: String,
    /// Traced requests of this class.
    pub count: u64,
    /// Median end-to-end latency, in virtual ticks.
    pub p50: u64,
    /// 95th-percentile end-to-end latency.
    pub p95: u64,
    /// 99th-percentile end-to-end latency.
    pub p99: u64,
    /// Largest end-to-end latency observed.
    pub max: u64,
}

/// Aggregated causal-trace analysis over a whole run: how many request
/// traces and spans were recorded, the per-class latency digests, and
/// the critical-path breakdown — for each trace, which segment (queue
/// wait, losing probe, a pipeline phase, a preemption detour) dominated
/// its latency, tallied by segment name. `None` in [`SimReport::trace`]
/// unless the scenario enables
/// [`Scenario::trace`](crate::Scenario::trace).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Request traces recorded.
    pub traces: u64,
    /// Spans recorded across all traces.
    pub spans: u64,
    /// Per-class end-to-end latency digests, in drain order; classes
    /// with no traced requests are omitted.
    pub by_class: Vec<ClassTraceStats>,
    /// Dominant-segment tally: critical-path name → traces it dominated,
    /// in name order.
    pub critical_paths: Vec<(String, u64)>,
}

/// End-of-run operating-point cache statistics, summed over every shard
/// manager's `kairos-opcache` [`MappingCache`](kairos_core::CacheConfig).
/// The cache changes which work runs, never what is decided, so this
/// section is the *only* difference between a cache-enabled report and
/// its cache-off twin (the `opcache_equivalence` suite pins exactly
/// that). `None` in [`SimReport::cache`] unless the scenario enables
/// [`Scenario::cache`](crate::Scenario::cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheReport {
    /// Admissions served by replaying a cached operating point (or a
    /// cached refusal) instead of the four-phase pipeline.
    pub hits: u64,
    /// Admissions that missed and ran the cold pipeline.
    pub misses: u64,
    /// Cached points dropped by element-level invalidation (faults,
    /// repairs, migrations, rebalance moves).
    pub invalidations: u64,
    /// Points stored after cold pipeline runs.
    pub insertions: u64,
    /// Points dropped by FIFO capacity eviction.
    pub evictions: u64,
    /// Points still resident when the run ended.
    pub points: u64,
}

/// End-of-run serving counters from the `kairos-gateway`
/// [`Gateway`](kairos_gateway::Gateway) the scenario's service ran
/// behind. The gateway changes how requests reach the service, never
/// what the service decides, so with default knobs this section is the
/// *only* difference between a gatewayed report and its direct twin
/// (the `gateway_equivalence` suite pins exactly that). `None` in
/// [`SimReport::gateway`] unless the scenario sets
/// [`Scenario::gateway`](crate::Scenario::gateway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GatewayReport {
    /// Requests accepted into gateway lanes.
    pub submitted: u64,
    /// Requests forwarded to the inner service.
    pub forwarded: u64,
    /// Requests forwarded as single submissions.
    pub singles: u64,
    /// Batched submissions forwarded (caller batches plus coalesced
    /// waves).
    pub batches: u64,
    /// Single admissions merged into coalesced waves (zero unless the
    /// scenario enables [`GatewaySpec::coalesce`](crate::GatewaySpec)).
    pub coalesced: u64,
    /// Requests that reached their terminal completion event.
    pub completions: u64,
    /// Most gateway futures ever simultaneously in flight.
    pub peak_inflight: u64,
    /// Requests that found their lane full and parked for a free slot.
    pub parked: u64,
    /// Per-shard request lanes the gateway striped traffic over.
    pub lanes: u64,
}

/// The complete result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed the run was driven by.
    pub seed: u64,
    /// Virtual length of the run.
    pub horizon: u64,
    /// Total event counts.
    pub totals: Totals,
    /// Rejections per admission pipeline phase, in pipeline order
    /// (binding, mapping, routing, validation).
    pub rejections_by_phase: Vec<(String, u64)>,
    /// Per-workload-phase statistics.
    pub phases: Vec<PhaseStats>,
    /// Admission-queue statistics (all-zero for direct-admission runs).
    pub queue: QueueReport,
    /// Sampled metric time-series.
    pub samples: Vec<SamplePoint>,
    /// Platform state when the run ended.
    pub final_state: OccupancySnapshot,
    /// End-of-run snapshot of the telemetry registry — every counter,
    /// gauge and histogram the whole stack recorded, in name order.
    /// `None` unless the scenario enables
    /// [`Scenario::telemetry`](crate::Scenario::telemetry); the JSON
    /// rendering omits its `telemetry` key then, keeping legacy reports
    /// byte-identical.
    pub telemetry: Option<Snapshot>,
    /// End-of-run causal-trace analysis. `None` unless the scenario
    /// enables [`Scenario::trace`](crate::Scenario::trace); the JSON
    /// rendering omits its `trace` key then. All fields are integers
    /// derived from virtual-tick spans, so the section is byte-stable.
    pub trace: Option<TraceReport>,
    /// End-of-run operating-point cache statistics, summed over every
    /// shard manager. `None` unless the scenario enables
    /// [`Scenario::cache`](crate::Scenario::cache); the JSON rendering
    /// omits its `cache` key then, keeping legacy reports
    /// byte-identical. All fields are lifetime counters, so the section
    /// is byte-stable.
    pub cache: Option<CacheReport>,
    /// End-of-run gateway serving counters. `None` unless the scenario
    /// sets [`Scenario::gateway`](crate::Scenario::gateway); the JSON
    /// rendering omits its `gateway` key then, keeping legacy reports
    /// byte-identical. All fields are lifetime counters, so the section
    /// is byte-stable.
    pub gateway: Option<GatewayReport>,
    /// End-of-run energy account from the `kairos-watch`
    /// [`EnergyMeter`](kairos_watch::EnergyMeter). `None` unless the
    /// scenario sets [`Scenario::power`](crate::Scenario::power) or
    /// [`Scenario::watch`](crate::Scenario::watch); the JSON rendering
    /// omits its `energy` key then, keeping legacy reports
    /// byte-identical. Every field is an integer milliwatt-tick or
    /// milliwatt quantity over virtual time, so the section is
    /// byte-stable.
    pub energy: Option<EnergyReport>,
    /// End-of-run health judgment from the `kairos-watch`
    /// [`Watcher`](kairos_watch::Watcher): alert lifecycles and per-shard
    /// health scores. `None` unless the scenario sets
    /// [`Scenario::watch`](crate::Scenario::watch); the JSON rendering
    /// omits its `health` key then. All monitor arithmetic is
    /// integer/fixed-point over virtual time, so the section is
    /// byte-stable.
    pub health: Option<HealthReport>,
}

/// A metric snapshot as an ordered JSON object: one key per metric (the
/// snapshot is already name-sorted), counters and gauges as bare
/// integers, histograms as `{count, sum, min, max, bounds, buckets}`
/// objects. Every value is an integer, so the rendering is byte-stable.
fn telemetry_json(snapshot: &Snapshot) -> Json {
    let mut doc = Json::object();
    for metric in &snapshot.metrics {
        match &metric.value {
            MetricValue::Counter(v) => doc.push(&metric.name, *v),
            MetricValue::Gauge(v) => doc.push(&metric.name, *v),
            MetricValue::Histogram(h) => {
                let mut hist = Json::object();
                hist.push("count", h.count);
                hist.push("sum", h.sum);
                hist.push("min", h.min);
                hist.push("max", h.max);
                hist.push("bounds", h.bounds.iter().map(|&b| Json::UInt(b)).collect::<Vec<_>>());
                hist.push("buckets", h.buckets.iter().map(|&b| Json::UInt(b)).collect::<Vec<_>>());
                doc.push(&metric.name, hist)
            }
        };
    }
    doc
}

/// The trace analysis as an ordered JSON object; every value is an
/// integer, so the rendering is byte-stable.
fn trace_json(report: &TraceReport) -> Json {
    let mut doc = Json::object();
    doc.push("traces", report.traces);
    doc.push("spans", report.spans);
    let by_class = report
        .by_class
        .iter()
        .map(|c| {
            let mut class = Json::object();
            class.push("class", c.class.as_str());
            class.push("count", c.count);
            class.push("p50", c.p50);
            class.push("p95", c.p95);
            class.push("p99", c.p99);
            class.push("max", c.max);
            class
        })
        .collect::<Vec<_>>();
    doc.push("by_class", by_class);
    let mut critical = Json::object();
    for (name, count) in &report.critical_paths {
        critical.push(name, *count);
    }
    doc.push("critical_paths", critical);
    doc
}

/// The energy account as an ordered JSON object; every value is an
/// integer milliwatt-tick or milliwatt quantity, so the rendering is
/// byte-stable.
fn energy_json(report: &EnergyReport) -> Json {
    let mut doc = Json::object();
    doc.push("horizon", report.horizon);
    doc.push("samples", report.samples);
    doc.push("total_mw_ticks", report.total_mw_ticks);
    doc.push("busy_mw_ticks", report.busy_mw_ticks);
    doc.push("idle_mw_ticks", report.idle_mw_ticks);
    let mut by_kind = Json::object();
    for kind in &report.by_kind {
        by_kind.push(&kind.kind, kind.mw_ticks);
    }
    doc.push("by_kind", by_kind);
    let packages = report
        .packages
        .iter()
        .map(|p| {
            let mut package = Json::object();
            package.push("name", p.name.as_str());
            package.push("mw_ticks", p.mw_ticks);
            package.push("peak_mw", p.peak_mw);
            package
        })
        .collect::<Vec<_>>();
    doc.push("packages", packages);
    let series = report
        .series
        .iter()
        .map(|p| {
            let mut point = Json::object();
            point.push("at", p.at);
            point.push("total_mw", p.total_mw);
            point.push(
                "package_mw",
                p.package_mw.iter().map(|&mw| Json::UInt(mw)).collect::<Vec<_>>(),
            );
            point
        })
        .collect::<Vec<_>>();
    doc.push("series", series);
    let top_apps = report
        .top_apps
        .iter()
        .map(|a| {
            let mut app = Json::object();
            app.push("app", a.app);
            app.push("mw_ticks", a.mw_ticks);
            app
        })
        .collect::<Vec<_>>();
    doc.push("top_apps", top_apps);
    doc
}

/// The health judgment as an ordered JSON object; alerts render their
/// full lifecycle (fire/clear instants, severity, cause chain), so the
/// rendering is byte-stable.
fn health_json(report: &HealthReport) -> Json {
    let mut doc = Json::object();
    doc.push("rules", report.rules);
    doc.push("evaluations", report.evaluations);
    doc.push("fired", report.fired);
    doc.push("cleared", report.cleared);
    let alerts = report
        .alerts
        .iter()
        .map(|a| {
            let mut alert = Json::object();
            alert.push("seq", a.seq);
            alert.push("kind", a.kind.to_string());
            alert.push("subject", a.subject.as_str());
            alert.push("severity", a.severity.to_string());
            match a.shard {
                Some(shard) => alert.push("shard", shard),
                None => alert.push("shard", Json::Null),
            };
            alert.push("fired_at", a.fired_at);
            match a.cleared_at {
                Some(at) => alert.push("cleared_at", at),
                None => alert.push("cleared_at", Json::Null),
            };
            alert.push("signal", a.signal);
            alert.push("threshold", a.threshold);
            alert.push("cause", a.cause.iter().map(|c| Json::from(c.as_str())).collect::<Vec<_>>());
            alert
        })
        .collect::<Vec<_>>();
    doc.push("alerts", alerts);
    let shards = report
        .shards
        .iter()
        .map(|s| {
            let mut shard = Json::object();
            shard.push("shard", s.shard);
            shard.push("score", s.score);
            shard
        })
        .collect::<Vec<_>>();
    doc.push("shards", shards);
    doc
}

fn occupancy_json(o: &OccupancySnapshot) -> Json {
    let mut doc = Json::object();
    doc.push("admitted_apps", o.admitted_apps);
    doc.push("element_utilisation", o.element_utilisation);
    doc.push("resource_utilisation", o.resource_utilisation);
    doc.push("external_fragmentation", o.external_fragmentation);
    doc.push("free_islands", o.free_islands);
    doc.push("failed_elements", o.failed_elements);
    doc
}

impl SimReport {
    /// The report as an ordered JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.push("scenario", self.scenario.as_str());
        doc.push("seed", self.seed);
        doc.push("horizon", self.horizon);

        let mut totals = Json::object();
        totals.push("arrivals", self.totals.arrivals);
        totals.push("admissions", self.totals.admissions);
        totals.push("rejections", self.totals.rejections);
        totals.push("departures", self.totals.departures);
        totals.push("faults_injected", self.totals.faults_injected);
        totals.push("repairs", self.totals.repairs);
        totals.push("evictions", self.totals.evictions);
        totals.push("readmissions", self.totals.readmissions);
        totals.push("lost_to_faults", self.totals.lost_to_faults);
        totals.push("preemptions", self.totals.preemptions);
        totals.push("preempt_readmissions", self.totals.preempt_readmissions);
        totals.push("lost_to_preemption", self.totals.lost_to_preemption);
        totals.push("migrations", self.totals.migrations);
        totals.push("defrag_moves", self.totals.defrag_moves);
        totals.push("rebalance_moves", self.totals.rebalance_moves);
        doc.push("totals", totals);

        let mut rejections = Json::object();
        for (phase, count) in &self.rejections_by_phase {
            rejections.push(phase, *count);
        }
        doc.push("rejections_by_phase", rejections);

        let phases = self
            .phases
            .iter()
            .map(|p| {
                let mut phase = Json::object();
                phase.push("name", p.name.as_str());
                phase.push("start", p.start);
                phase.push("end", p.end);
                phase.push("arrivals", p.arrivals);
                phase.push("admissions", p.admissions);
                phase.push("rejections", p.rejections);
                phase.push("departures", p.departures);
                phase.push("rejection_rate", p.rejection_rate);
                phase.push("mean_utilisation", p.mean_utilisation);
                phase.push("mean_fragmentation", p.mean_fragmentation);
                phase
            })
            .collect::<Vec<_>>();
        doc.push("phases", phases);

        let mut queue = Json::object();
        queue.push("enabled", self.queue.enabled);
        queue.push("queued", self.queue.queued);
        queue.push("admitted_immediate", self.queue.admitted_immediate);
        queue.push("admitted_after_wait", self.queue.admitted_after_wait);
        queue.push("retry_attempts", self.queue.retry_attempts);
        queue.push("rejected_queue_full", self.queue.rejected_queue_full);
        queue.push("rejected_permanent", self.queue.rejected_permanent);
        queue.push("dropped_timeout", self.queue.dropped_timeout);
        queue.push("dropped_retries_exhausted", self.queue.dropped_retries_exhausted);
        queue.push("flushed_at_shutdown", self.queue.flushed_at_shutdown);
        queue.push("max_depth", self.queue.max_depth);
        queue.push("mean_wait", self.queue.mean_wait);
        queue.push("max_wait", self.queue.max_wait);
        let by_class = self
            .queue
            .by_class
            .iter()
            .map(|c| {
                let mut class = Json::object();
                class.push("class", c.class.as_str());
                class.push("queued", c.queued);
                class.push("admitted", c.admitted);
                class.push("dropped", c.dropped);
                class.push("total_wait", c.total_wait);
                class.push("mean_wait", c.mean_wait);
                class.push("wait_p50", c.wait_p50);
                class.push("wait_p95", c.wait_p95);
                class.push("wait_p99", c.wait_p99);
                class
            })
            .collect::<Vec<_>>();
        queue.push("by_class", by_class);
        doc.push("queue", queue);

        let samples = self
            .samples
            .iter()
            .map(|s| {
                let mut sample = Json::object();
                sample.push("at", s.at);
                sample.push("occupancy", occupancy_json(&s.occupancy));
                sample.push("queue_depth", s.queue_depth);
                sample
            })
            .collect::<Vec<_>>();
        doc.push("samples", samples);

        doc.push("final_state", occupancy_json(&self.final_state));
        if let Some(snapshot) = &self.telemetry {
            doc.push("telemetry", telemetry_json(snapshot));
        }
        if let Some(trace) = &self.trace {
            doc.push("trace", trace_json(trace));
        }
        if let Some(cache) = &self.cache {
            let mut section = Json::object();
            section.push("hits", cache.hits);
            section.push("misses", cache.misses);
            section.push("invalidations", cache.invalidations);
            section.push("insertions", cache.insertions);
            section.push("evictions", cache.evictions);
            section.push("points", cache.points);
            doc.push("cache", section);
        }
        if let Some(gateway) = &self.gateway {
            let mut section = Json::object();
            section.push("submitted", gateway.submitted);
            section.push("forwarded", gateway.forwarded);
            section.push("singles", gateway.singles);
            section.push("batches", gateway.batches);
            section.push("coalesced", gateway.coalesced);
            section.push("completions", gateway.completions);
            section.push("peak_inflight", gateway.peak_inflight);
            section.push("parked", gateway.parked);
            section.push("lanes", gateway.lanes);
            doc.push("gateway", section);
        }
        if let Some(energy) = &self.energy {
            doc.push("energy", energy_json(energy));
        }
        if let Some(health) = &self.health {
            doc.push("health", health_json(health));
        }
        doc
    }

    /// The report rendered as a JSON string, byte-for-byte deterministic
    /// for identical runs.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// The run's final state as a `kairos-watch` [`StatusSnapshot`] — the
    /// `kairos-top`-style dump the scenario runner renders under
    /// `--status`. `shards` is the service's shard count (the report
    /// itself does not retain it; ask
    /// [`ResourceService::shard_count`](kairos_svc::ResourceService::shard_count)).
    pub fn status(&self, shards: usize) -> StatusSnapshot {
        StatusSnapshot {
            scenario: self.scenario.clone(),
            horizon: self.horizon,
            shards,
            lanes: self.gateway.as_ref().map(|g| g.lanes as usize),
            totals: StatusTotals {
                arrivals: self.totals.arrivals,
                admissions: self.totals.admissions,
                rejections: self.totals.rejections,
                departures: self.totals.departures,
            },
            admitted: self.final_state.admitted_apps,
            queue_depth: self.samples.last().map_or(0, |s| s.queue_depth as usize),
            failed_elements: self.final_state.failed_elements,
            cache: self.cache.map(|c| kairos_core::CacheStats {
                hits: c.hits,
                misses: c.misses,
                invalidations: c.invalidations,
                insertions: c.insertions,
                evictions: c.evictions,
                points: c.points,
            }),
            energy: self.energy.clone(),
            health: self.health.clone(),
        }
    }
}
