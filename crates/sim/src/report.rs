//! Aggregated simulation results.
//!
//! A [`SimReport`] is everything a scenario run leaves behind: total event
//! counts, rejections broken down by the admission pipeline phase that
//! refused them, per-workload-phase statistics, the sampled metric
//! time-series and the final platform state. Rendering to JSON is
//! deterministic — two runs of the same scenario produce byte-identical
//! reports.

use serde::{Deserialize, Serialize};

use kairos_core::OccupancySnapshot;

use crate::json::Json;

/// Total event counts over a whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Totals {
    /// Applications that arrived (offered for admission).
    pub arrivals: u64,
    /// Successful admissions of fresh arrivals (`arrivals == admissions +
    /// rejections`); re-admissions after faults are counted separately in
    /// [`Totals::readmissions`].
    pub admissions: u64,
    /// Refused admissions.
    pub rejections: u64,
    /// Applications that departed after their lifetime expired.
    pub departures: u64,
    /// Element faults injected.
    pub faults_injected: u64,
    /// Element repairs performed.
    pub repairs: u64,
    /// Applications evicted by element faults.
    pub evictions: u64,
    /// Evicted applications successfully re-admitted elsewhere.
    pub readmissions: u64,
    /// Evicted applications that could not be re-admitted.
    pub lost_to_faults: u64,
}

/// Statistics of one workload phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name from the scenario.
    pub name: String,
    /// Phase start tick (inclusive).
    pub start: u64,
    /// Phase end tick (exclusive).
    pub end: u64,
    /// Arrivals during the phase.
    pub arrivals: u64,
    /// Admissions during the phase.
    pub admissions: u64,
    /// Rejections during the phase.
    pub rejections: u64,
    /// Departures during the phase.
    pub departures: u64,
    /// `rejections / arrivals`, `0` for arrival-free phases.
    pub rejection_rate: f64,
    /// Mean element utilisation over the phase's samples.
    pub mean_utilisation: f64,
    /// Mean external fragmentation over the phase's samples.
    pub mean_fragmentation: f64,
}

/// One point of the sampled metric time-series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Virtual time of the sample.
    pub at: u64,
    /// Platform occupancy metrics at that instant.
    pub occupancy: OccupancySnapshot,
}

/// The complete result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed the run was driven by.
    pub seed: u64,
    /// Virtual length of the run.
    pub horizon: u64,
    /// Total event counts.
    pub totals: Totals,
    /// Rejections per admission pipeline phase, in pipeline order
    /// (binding, mapping, routing, validation).
    pub rejections_by_phase: Vec<(String, u64)>,
    /// Per-workload-phase statistics.
    pub phases: Vec<PhaseStats>,
    /// Sampled metric time-series.
    pub samples: Vec<SamplePoint>,
    /// Platform state when the run ended.
    pub final_state: OccupancySnapshot,
}

fn occupancy_json(o: &OccupancySnapshot) -> Json {
    let mut doc = Json::object();
    doc.push("admitted_apps", o.admitted_apps);
    doc.push("element_utilisation", o.element_utilisation);
    doc.push("resource_utilisation", o.resource_utilisation);
    doc.push("external_fragmentation", o.external_fragmentation);
    doc.push("free_islands", o.free_islands);
    doc.push("failed_elements", o.failed_elements);
    doc
}

impl SimReport {
    /// The report as an ordered JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.push("scenario", self.scenario.as_str());
        doc.push("seed", self.seed);
        doc.push("horizon", self.horizon);

        let mut totals = Json::object();
        totals.push("arrivals", self.totals.arrivals);
        totals.push("admissions", self.totals.admissions);
        totals.push("rejections", self.totals.rejections);
        totals.push("departures", self.totals.departures);
        totals.push("faults_injected", self.totals.faults_injected);
        totals.push("repairs", self.totals.repairs);
        totals.push("evictions", self.totals.evictions);
        totals.push("readmissions", self.totals.readmissions);
        totals.push("lost_to_faults", self.totals.lost_to_faults);
        doc.push("totals", totals);

        let mut rejections = Json::object();
        for (phase, count) in &self.rejections_by_phase {
            rejections.push(phase, *count);
        }
        doc.push("rejections_by_phase", rejections);

        let phases = self
            .phases
            .iter()
            .map(|p| {
                let mut phase = Json::object();
                phase.push("name", p.name.as_str());
                phase.push("start", p.start);
                phase.push("end", p.end);
                phase.push("arrivals", p.arrivals);
                phase.push("admissions", p.admissions);
                phase.push("rejections", p.rejections);
                phase.push("departures", p.departures);
                phase.push("rejection_rate", p.rejection_rate);
                phase.push("mean_utilisation", p.mean_utilisation);
                phase.push("mean_fragmentation", p.mean_fragmentation);
                phase
            })
            .collect::<Vec<_>>();
        doc.push("phases", phases);

        let samples = self
            .samples
            .iter()
            .map(|s| {
                let mut sample = Json::object();
                sample.push("at", s.at);
                sample.push("occupancy", occupancy_json(&s.occupancy));
                sample
            })
            .collect::<Vec<_>>();
        doc.push("samples", samples);

        doc.push("final_state", occupancy_json(&self.final_state));
        doc
    }

    /// The report rendered as a JSON string, byte-for-byte deterministic
    /// for identical runs.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}
