//! Shared test support for the workspace's integration suites.
//!
//! The cluster-transparency, telemetry-observer, trace-determinism,
//! opcache-equivalence, gateway-equivalence and watch-observer suites
//! all need the same
//! ingredients: a small deterministic workload mix, a parameterised
//! scenario generator covering the queued/clustered/preempting axes,
//! the one-shard cluster and gateway rewrites, and snapshot readers for
//! pinned metric names. They used to
//! carry private copies; this module (behind the `testkit` feature) is
//! the single shared implementation.

use kairos_admitd::{AdmitPolicy, PreemptionPolicy};
use kairos_appgen::{DatasetSpec, MixEntry, Orientation, SizeClass};
use kairos_cluster::PlacementPolicyKind;
use kairos_telemetry::{MetricValue, Snapshot};

use crate::{ClusterSpec, GatewaySpec, PhaseSpec, PlatformSpec, Scenario, Simulator, WatchSpec};

/// A small two-entry workload mix: two computation-oriented and one
/// communication-oriented small dataset.
pub fn small_mix() -> Vec<MixEntry> {
    vec![
        MixEntry::new(
            DatasetSpec { orientation: Orientation::Computation, size: SizeClass::Small },
            2,
        ),
        MixEntry::new(
            DatasetSpec { orientation: Orientation::Communication, size: SizeClass::Small },
            1,
        ),
    ]
}

/// A small generated scenario covering the queued/clustered/preempting
/// axes; `telemetry`, `trace` and `cache` are left off for the caller to
/// flip.
pub fn generated(
    seed: u64,
    interarrival: u64,
    lifetime: u64,
    queued: bool,
    clustered: bool,
    preempt: bool,
) -> Scenario {
    Scenario {
        name: "generated".to_owned(),
        seed,
        sample_period: 40,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("churn", 500, interarrival, lifetime, small_mix()),
            PhaseSpec::new("drain", 1200, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: queued.then(|| AdmitPolicy {
            class_capacity: [4, 4, 6, 8],
            max_wait: Some(400),
            max_attempts: 5,
            backoff_base: 1,
            backoff_cap: 4,
            preemption: if preempt {
                PreemptionPolicy::Migrate
            } else {
                PreemptionPolicy::Disabled
            },
            max_victims: 3,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: clustered.then_some(ClusterSpec {
            shards: 2,
            policy: PlacementPolicyKind::LeastLoaded,
            rebalance: None,
        }),
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// The scenario rewritten to run behind a default-knob gateway (the
/// gateway-transparency pin's rewrite).
///
/// # Panics
///
/// Panics when the scenario is already gatewayed.
pub fn gatewayed(mut scenario: Scenario) -> Scenario {
    assert!(scenario.gateway.is_none(), "only ungatewayed scenarios are rewritten");
    scenario.gateway = Some(GatewaySpec::default());
    scenario
}

/// The scenario rewritten to run through a one-shard cluster (the
/// sharding-transparency pin's rewrite).
///
/// # Panics
///
/// Panics when the scenario is already clustered.
pub fn clustered_once(mut scenario: Scenario) -> Scenario {
    assert!(scenario.cluster.is_none(), "only unclustered scenarios are rewritten");
    scenario.cluster =
        Some(ClusterSpec { shards: 1, policy: PlacementPolicyKind::FirstFit, rebalance: None });
    scenario
}

/// The scenario rewritten to run under a default-knob watch policy (the
/// watch observer pin's rewrite). Watching implies energy metering, so
/// the rewritten run carries both the `energy` and `health` report
/// sections.
///
/// # Panics
///
/// Panics when the scenario is already watched.
pub fn watched(mut scenario: Scenario) -> Scenario {
    assert!(scenario.watch.is_none(), "only unwatched scenarios are rewritten");
    scenario.watch = Some(WatchSpec::default());
    scenario
}

/// One traced run of `scenario` (with `trace` forced on): the report
/// JSON plus the exported Chrome-trace timeline.
pub fn traced_run(mut scenario: Scenario) -> (String, String) {
    scenario.trace = true;
    let mut simulator = Simulator::new(scenario).unwrap();
    let report = simulator.run();
    (report.to_json_string(), simulator.telemetry().chrome_trace())
}

/// The value of counter `name` in `snapshot`.
///
/// # Panics
///
/// Panics when the metric is missing or not a counter.
pub fn counter(snapshot: &Snapshot, name: &str) -> u64 {
    let metric = snapshot
        .metrics
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("metric {name} missing from snapshot"));
    match &metric.value {
        MetricValue::Counter(v) => *v,
        other => panic!("{name} is not a counter: {other:?}"),
    }
}

/// The sample count of histogram `name` in `snapshot`.
///
/// # Panics
///
/// Panics when the metric is missing or not a histogram.
pub fn histogram_count(snapshot: &Snapshot, name: &str) -> u64 {
    let metric = snapshot
        .metrics
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("metric {name} missing from snapshot"));
    match &metric.value {
        MetricValue::Histogram(h) => h.count,
        other => panic!("{name} is not a histogram: {other:?}"),
    }
}
