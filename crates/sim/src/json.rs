//! Deterministic JSON emission.
//!
//! The offline `serde` shim has no serializers (see `shims/README.md`), so
//! report serialization is hand-rolled here: a tiny ordered document model
//! plus a writer whose output is byte-for-byte deterministic — object keys
//! keep insertion order and floats use Rust's shortest-roundtrip `Display`.
//! That determinism is load-bearing: the sim's reproducibility tests compare
//! whole rendered reports for byte equality.

use std::fmt::Write as _;

/// A JSON document node. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key to an object.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(entries) => entries.push((key.to_owned(), value.into())),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline, byte-for-byte deterministic for equal documents.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `Display` omits the decimal point for integral floats;
                    // keep the token a JSON float regardless.
                    let mut rendered = format!("{v}");
                    if !rendered.contains('.') && !rendered.contains('e') {
                        rendered.push_str(".0");
                    }
                    out.push_str(&rendered);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let mut doc = Json::object();
        doc.push("name", "steady \"churn\"");
        doc.push("count", 3u64);
        doc.push("ratio", 0.25);
        doc.push("whole", 2.0);
        doc.push("flag", true);
        doc.push("items", vec![Json::UInt(1), Json::Null]);
        doc.push("empty", Json::Array(Vec::new()));
        let text = doc.render();
        assert!(text.contains("\"name\": \"steady \\\"churn\\\"\""));
        assert!(text.contains("\"ratio\": 0.25"));
        assert!(text.contains("\"whole\": 2.0"), "integral floats keep a decimal point: {text}");
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let make = || {
            let mut doc = Json::object();
            doc.push("a", 1u64);
            doc.push("b", vec![Json::Float(1.5), Json::Bool(false)]);
            doc.render()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null\n");
    }
}
