//! # kairos-sim
//!
//! A deterministic discrete-event scenario engine for the Kairos resource
//! manager. The paper's entire point is *run-time* management —
//! applications arrive, leave, and elements fail while the manager keeps
//! the platform packed — and this crate turns the one-shot admission
//! pipeline into that long-running system: timed event traces of
//! application arrivals (drawn from the `kairos-appgen` datasets),
//! exponential lifetimes, scripted element faults with optional recovery,
//! and periodic occupancy sampling.
//!
//! * [`Scenario`] — a seeded, fully declarative experiment description,
//!   with a built-in catalog of twenty-two named scenarios
//!   ([`Scenario::catalog`], documented in `docs/SCENARIOS.md`):
//!   `steady-churn`, `bursty-arrivals`, `saturation`, `hotspot-failures`,
//!   `mixed-datasets`, three that exercise the `kairos-admitd` admission
//!   front-end — `priority-inversion`, `overload-backpressure`,
//!   `retry-storm` — three that exercise the `kairos-reloc` relocation
//!   subsystem — `critical-preempt`, `migrate-vs-evict`, `defrag-sweep`
//!   — `batch-arrival-wave`, which admits synchronized arrival waves
//!   through the batched service path, two that exercise the
//!   `kairos-cluster` sharded deployment ([`ClusterSpec`]) —
//!   `sharded-arrival-storm` (parallel admission probes over four region
//!   shards) and `cross-shard-rebalance` (periodic evict-and-readmit
//!   sweeps against a skewed first-fit fill, [`RebalanceSpec`]) —
//!   `telemetry-probe-latency`, which runs a sharded preempting workload
//!   with [`Scenario::telemetry`] recording enabled (see
//!   `docs/OBSERVABILITY.md`), `traced-preemption-storm`, which runs
//!   with [`Scenario::trace`] causal tracing enabled, and two that
//!   exercise the `kairos-opcache` operating-point cache with
//!   [`Scenario::cache`] enabled — `cache-warm-storm` (a repeating
//!   same-shape admission storm replayed from the cache) and
//!   `cache-invalidation-churn` (element faults and repairs sweeping
//!   cached points out from under continuing admissions), and two that
//!   run behind the `kairos-gateway` async serving front-end
//!   ([`GatewaySpec`]) — `gateway-arrival-storm` (a sharded storm
//!   streamed through per-shard bounded lanes, byte-identical to its
//!   unwrapped twin) and `gateway-backpressure` (a queued overload
//!   behind a four-slot lane that parks requests in the gateway), and
//!   two that exercise the `kairos-watch` energy/health layer
//!   ([`WatchSpec`], [`PowerSpec`]) — `slo-burn-storm` (a queued
//!   overload that fires and then clears the burn-rate SLO alerts) and
//!   `power-cap-skew` (a package-wide DSP outage that trips the
//!   per-package power anomaly detector);
//! * [`Simulator`] — the event queue + virtual clock driving all
//!   scenario traffic through the unified
//!   [`kairos_svc::ResourceService`] API: arrivals are `Admit` commands
//!   (waves go through `submit_batch` as one batched operation),
//!   departures are `Release`, scripted faults are `InjectFault`, and
//!   every accounting decision is read off the service's single
//!   [`kairos_svc::Event`] stream — with or without a
//!   [`kairos_admitd::AdmitPolicy`] priority queue (backpressure,
//!   bounded retry, timeouts, preemption), plus periodic defragmenting
//!   compaction sweeps ([`DefragSpec`]);
//! * [`SimReport`] — aggregated admissions, rejections by pipeline phase,
//!   departures, fault statistics, relocation counters (preemptions,
//!   migrations, defrag moves), queue behaviour ([`QueueReport`]: depth,
//!   waits, retries, drops) and metric time-series — plus, for
//!   telemetry-enabled runs, the end-of-run snapshot of the whole
//!   stack's metric registry ([`SimReport::telemetry`]) — and, for
//!   watched/metered runs, the `kairos-watch` energy account
//!   ([`SimReport::energy`]) and health judgment ([`SimReport::health`])
//!   — rendered as byte-deterministic JSON.
//!
//! Identical scenarios yield byte-identical reports: the engine draws every
//! random choice from the scenario seed and never consults wall-clock time.
//!
//! ## Example
//!
//! ```
//! use kairos_sim::{Scenario, Simulator};
//!
//! let scenario = Scenario::by_name("bursty-arrivals").unwrap();
//! let report = Simulator::new(scenario.clone()).unwrap().run();
//! let again = Simulator::new(scenario).unwrap().run();
//! assert_eq!(report.to_json_string(), again.to_json_string());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod engine;
pub mod json;
mod report;
mod scenario;
#[cfg(feature = "testkit")]
pub mod testkit;

pub use engine::Simulator;
pub use report::{
    CacheReport, ClassQueueStats, GatewayReport, PhaseStats, QueueReport, SamplePoint, SimReport,
    Totals,
};
pub use scenario::{
    ClusterSpec, DefragSpec, FaultSpec, GatewaySpec, PhaseSpec, PlatformSpec, PowerOverride,
    PowerSpec, RebalanceSpec, Scenario, WatchSpec,
};
