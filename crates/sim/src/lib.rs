//! # kairos-sim
//!
//! A deterministic discrete-event scenario engine for the Kairos resource
//! manager. The paper's entire point is *run-time* management —
//! applications arrive, leave, and elements fail while the manager keeps
//! the platform packed — and this crate turns the one-shot admission
//! pipeline into that long-running system: timed event traces of
//! application arrivals (drawn from the `kairos-appgen` datasets),
//! exponential lifetimes, scripted element faults with optional recovery,
//! and periodic occupancy sampling.
//!
//! * [`Scenario`] — a seeded, fully declarative experiment description,
//!   with a built-in catalog of eleven named scenarios
//!   ([`Scenario::catalog`], documented in `docs/SCENARIOS.md`):
//!   `steady-churn`, `bursty-arrivals`, `saturation`, `hotspot-failures`,
//!   `mixed-datasets`, three that exercise the `kairos-admitd` admission
//!   front-end — `priority-inversion`, `overload-backpressure`,
//!   `retry-storm` — and three that exercise the `kairos-reloc`
//!   relocation subsystem — `critical-preempt`, `migrate-vs-evict`,
//!   `defrag-sweep`;
//! * [`Simulator`] — the event queue + virtual clock driving a
//!   [`Kairos`](kairos_core::Kairos) manager through a scenario, directly
//!   or through a [`kairos_admitd::Admitd`] priority queue with
//!   backpressure, bounded retry, timeouts and preemption, plus periodic
//!   defragmenting compaction sweeps ([`DefragSpec`]);
//! * [`SimReport`] — aggregated admissions, rejections by pipeline phase,
//!   departures, fault statistics, relocation counters (preemptions,
//!   migrations, defrag moves), queue behaviour ([`QueueReport`]: depth,
//!   waits, retries, drops) and metric time-series, rendered as
//!   byte-deterministic JSON.
//!
//! Identical scenarios yield byte-identical reports: the engine draws every
//! random choice from the scenario seed and never consults wall-clock time.
//!
//! ## Example
//!
//! ```
//! use kairos_sim::{Scenario, Simulator};
//!
//! let scenario = Scenario::by_name("bursty-arrivals").unwrap();
//! let report = Simulator::new(scenario.clone()).unwrap().run();
//! let again = Simulator::new(scenario).unwrap().run();
//! assert_eq!(report.to_json_string(), again.to_json_string());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod json;
mod report;
mod scenario;

pub use engine::Simulator;
pub use report::{ClassQueueStats, PhaseStats, QueueReport, SamplePoint, SimReport, Totals};
pub use scenario::{DefragSpec, FaultSpec, PhaseSpec, PlatformSpec, Scenario};
