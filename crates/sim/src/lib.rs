//! # kairos-sim
//!
//! A deterministic discrete-event scenario engine for the Kairos resource
//! manager. The paper's entire point is *run-time* management —
//! applications arrive, leave, and elements fail while the manager keeps
//! the platform packed — and this crate turns the one-shot admission
//! pipeline into that long-running system: timed event traces of
//! application arrivals (drawn from the `kairos-appgen` datasets),
//! exponential lifetimes, scripted element faults with optional recovery,
//! and periodic occupancy sampling.
//!
//! * [`Scenario`] — a seeded, fully declarative experiment description,
//!   with a built-in catalog of five named scenarios ([`Scenario::catalog`]):
//!   `steady-churn`, `bursty-arrivals`, `saturation`, `hotspot-failures`
//!   and `mixed-datasets`;
//! * [`Simulator`] — the event queue + virtual clock driving a
//!   [`Kairos`](kairos_core::Kairos) manager through a scenario;
//! * [`SimReport`] — aggregated admissions, rejections by pipeline phase,
//!   departures, fault statistics and metric time-series, rendered as
//!   byte-deterministic JSON.
//!
//! Identical scenarios yield byte-identical reports: the engine draws every
//! random choice from the scenario seed and never consults wall-clock time.
//!
//! ## Example
//!
//! ```
//! use kairos_sim::{Scenario, Simulator};
//!
//! let scenario = Scenario::by_name("bursty-arrivals").unwrap();
//! let report = Simulator::new(scenario.clone()).unwrap().run();
//! let again = Simulator::new(scenario).unwrap().run();
//! assert_eq!(report.to_json_string(), again.to_json_string());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod json;
mod report;
mod scenario;

pub use engine::Simulator;
pub use report::{PhaseStats, SamplePoint, SimReport, Totals};
pub use scenario::{FaultSpec, PhaseSpec, PlatformSpec, Scenario};
