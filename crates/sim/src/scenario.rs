//! Scenario descriptions and the built-in catalog.
//!
//! A [`Scenario`] is a complete, seeded description of a multi-application
//! experiment: the platform, a sequence of workload phases (each with its
//! own dataset mixture, arrival rate and lifetime distribution), and a
//! script of element faults. Identical scenarios produce identical
//! simulations — the engine draws every random choice from the scenario
//! seed.
//!
//! [`Scenario::catalog`] ships twenty-two named scenarios: five spanning the
//! regimes the paper motivates (steady churn, bursty arrivals, saturation,
//! hotspot element failures, a mixed-dataset workload), three exercising
//! the `kairos-admitd` admission front-end (priority inversion, overload
//! backpressure, retry storms), three exercising the `kairos-reloc`
//! relocation subsystem (preemption of low-priority work for criticals,
//! migration versus evict-and-readmit, defragmenting compaction sweeps),
//! one exercising batched submission through the `kairos-svc` service
//! API (synchronized arrival waves), two exercising the
//! `kairos-cluster` sharded deployment (a parallel-probe arrival storm
//! over four region shards, and cross-shard rebalancing of a skewed
//! first-fit fill), one exercising the `kairos-telemetry`
//! observability layer (`telemetry-probe-latency`, which runs a sharded
//! preempting workload with [`Scenario::telemetry`] enabled and embeds
//! the metric snapshot in its report), one exercising per-request causal
//! tracing (`traced-preemption-storm`, with [`Scenario::trace`] enabled),
//! and two exercising the `kairos-opcache` operating-point cache
//! (`cache-warm-storm`, a repeating same-shape admission storm that keeps
//! the cache hot, and `cache-invalidation-churn`, which interleaves
//! element faults and repairs with cached admissions to exercise the
//! invalidation hooks; both run with [`Scenario::cache`] enabled), and
//! two exercising the `kairos-gateway` async serving front-end
//! (`gateway-arrival-storm`, a sharded storm streamed through the
//! gateway's default lanes and pinned byte-identical to the unwrapped
//! run, and `gateway-backpressure`, a queued overload behind a
//! four-slot lane that parks requests in the gateway; both run with
//! [`Scenario::gateway`] set), and two exercising the `kairos-watch`
//! energy/health layer (`slo-burn-storm`, a queued overload that fires
//! and then clears the burn-rate SLO alerts, and `power-cap-skew`, a
//! sharded run whose package-wide DSP outage trips the per-package power
//! anomaly detector; both run with [`Scenario::watch`] set).
//! `docs/SCENARIOS.md` documents every entry; CI checks the two stay in
//! sync.

use serde::{Deserialize, Serialize};

use kairos_admitd::{AdmitPolicy, PreemptionPolicy, PriorityClass};
use kairos_appgen::{
    ArrivalDistribution, DatasetSpec, MixEntry, Orientation, SizeClass, WorkloadMix,
};
use kairos_cluster::PlacementPolicyKind;
use kairos_platform::{topology, Platform};

use crate::json::Json;

/// The platform a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformSpec {
    /// The paper's CRISP General Stream Processor (62 elements).
    Crisp,
    /// A homogeneous DSP mesh.
    DspMesh {
        /// Mesh width in elements.
        width: usize,
        /// Mesh height in elements.
        height: usize,
    },
    /// A heterogeneous mesh (ARM/DSP/FPGA/memory mix).
    HeterogeneousMesh {
        /// Mesh width in elements.
        width: usize,
        /// Mesh height in elements.
        height: usize,
    },
}

impl PlatformSpec {
    /// Instantiates the platform.
    pub fn build(&self) -> Platform {
        match *self {
            PlatformSpec::Crisp => topology::crisp(),
            PlatformSpec::DspMesh { width, height } => topology::dsp_mesh(width, height),
            PlatformSpec::HeterogeneousMesh { width, height } => {
                topology::heterogeneous_mesh(width, height)
            }
        }
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> String {
        match *self {
            PlatformSpec::Crisp => "crisp".to_owned(),
            PlatformSpec::DspMesh { width, height } => format!("dsp-mesh-{width}x{height}"),
            PlatformSpec::HeterogeneousMesh { width, height } => {
                format!("het-mesh-{width}x{height}")
            }
        }
    }
}

/// One workload phase: a time window with its own arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Phase name, used in per-phase report rows.
    pub name: String,
    /// Phase length in virtual ticks.
    pub duration: u64,
    /// Mean inter-arrival gap; `0` disables arrivals (a drain or
    /// quiescent phase).
    pub mean_interarrival: u64,
    /// Mean exponential application lifetime; `0` means admitted
    /// applications never depart on their own.
    pub mean_lifetime: u64,
    /// Dataset mixture arrivals are drawn from.
    pub mix: Vec<MixEntry>,
    /// Shape of the inter-arrival distribution (exponential by default;
    /// deterministic and Pareto cover periodic and heavy-tailed sources).
    pub arrival: ArrivalDistribution,
    /// Priority class this phase's arrivals are submitted under when the
    /// scenario runs with an admission queue; ignored otherwise.
    pub priority: PriorityClass,
    /// Applications arriving *together* at each arrival instant — a
    /// synchronized wave. `1` is a lone arrival; larger waves are
    /// admitted through `ResourceService::submit_batch` as one batched
    /// operation (one platform transaction, one drain pass).
    pub batch: u64,
}

impl PhaseSpec {
    /// A phase named `name` lasting `duration` ticks, with exponential
    /// arrivals of [`PriorityClass::Normal`] priority.
    pub fn new(
        name: impl Into<String>,
        duration: u64,
        mean_interarrival: u64,
        mean_lifetime: u64,
        mix: Vec<MixEntry>,
    ) -> Self {
        PhaseSpec {
            name: name.into(),
            duration,
            mean_interarrival,
            mean_lifetime,
            mix,
            arrival: ArrivalDistribution::Exponential,
            priority: PriorityClass::Normal,
            batch: 1,
        }
    }

    /// The same phase with a different inter-arrival distribution.
    pub fn with_arrival(mut self, arrival: ArrivalDistribution) -> Self {
        self.arrival = arrival;
        self
    }

    /// The same phase submitting its arrivals under `priority`.
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = priority;
        self
    }

    /// The same phase arriving in synchronized waves of `batch`
    /// applications per arrival instant.
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Whether the phase generates arrivals at all.
    pub fn has_arrivals(&self) -> bool {
        self.mean_interarrival > 0 && !self.mix.is_empty()
    }
}

/// A periodic defragmenting compaction sweep (`kairos_reloc::compact`):
/// every `period` ticks the engine live-migrates up to `max_moves`
/// admitted applications, keeping only moves that strictly reduce
/// external resource fragmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefragSpec {
    /// Ticks between sweeps (the first sweep runs at `period`).
    pub period: u64,
    /// Most applications one sweep may move.
    pub max_moves: usize,
}

/// A periodic cross-shard rebalancing sweep
/// ([`kairos_svc::Command::Rebalance`]): every `period` ticks the engine
/// asks the cluster to move up to `max_moves` running applications from
/// its most- to its least-loaded shard (evict-and-readmit across the
/// boundary, two-phase). Only meaningful inside a [`ClusterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebalanceSpec {
    /// Ticks between sweeps (the first sweep runs at `period`).
    pub period: u64,
    /// Most applications one sweep may move across shards.
    pub max_moves: usize,
}

/// Sharded deployment of the scenario's platform: the engine partitions
/// the platform into `shards` contiguous capacity-balanced regions and
/// drives a `kairos-cluster` [`ClusterService`](kairos_cluster::ClusterService)
/// instead of the monolithic service — same `ResourceService` surface,
/// same traffic, a fleet of managers underneath. With `shards: 1` the
/// run is byte-identical to the unsharded scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of region shards.
    pub shards: usize,
    /// Shard-placement policy admissions are routed by.
    pub policy: PlacementPolicyKind,
    /// Periodic cross-shard rebalancing; `None` never rebalances.
    pub rebalance: Option<RebalanceSpec>,
}

/// Async serving front-end over the scenario's service: the engine wraps
/// the (possibly clustered) service in a `kairos-gateway`
/// [`Gateway`](kairos_gateway::Gateway) — requests stream through
/// per-shard bounded lanes on the gateway's deterministic single-threaded
/// executor, and the report grows a `gateway` section with the serving
/// counters. Under the default knobs the gateway is byte-identical to
/// driving the service directly (the `gateway_equivalence` suite pins
/// that); a small [`GatewaySpec::channel_capacity`] makes full lanes park
/// requests until completions free slots (bounded backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewaySpec {
    /// Bound of each per-shard request lane (must be at least 1).
    pub channel_capacity: usize,
    /// Merge contiguous single admissions flushed in one executor pass
    /// into one batched wave (changes how the service is driven, so
    /// excluded from the sync-equivalence guarantee).
    pub coalesce: bool,
}

impl Default for GatewaySpec {
    fn default() -> Self {
        let config = kairos_gateway::GatewayConfig::default();
        GatewaySpec { channel_capacity: config.channel_capacity, coalesce: config.coalesce }
    }
}

/// Energy/health watching over the run (`kairos-watch`): the spec is a
/// compact knob set the engine expands into a full
/// [`WatchPolicy`](kairos_watch::WatchPolicy) — one burn-rate SLO per
/// priority class plus the queue-depth, rejection-rate and anomaly
/// monitors. The watcher is a pure observer, so a watched run is
/// byte-identical to an unwatched one apart from the report's extra
/// `energy` and `health` sections (`tests/watch_observer.rs` pins that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchSpec {
    /// Admission wait (ticks) above which an admission burns SLO budget.
    pub slo_target_wait: u64,
    /// Allowed bad-admission fraction, in centi (`10` = 10%).
    pub slo_budget_centi: u64,
    /// Short burn-rate window, ticks.
    pub slo_short_window: u64,
    /// Long burn-rate window, ticks; must exceed the short window.
    pub slo_long_window: u64,
    /// Queue depth at which the queue monitor fires; `0` disables it.
    pub queue_fire_depth: u64,
    /// z-score (centi) firing the power/occupancy anomaly detectors;
    /// `0` disables both detectors.
    pub anomaly_z_centi: u64,
    /// Samples the anomaly detectors consume to seed their baselines.
    pub anomaly_warmup: u64,
}

impl Default for WatchSpec {
    fn default() -> Self {
        WatchSpec {
            slo_target_wait: 120,
            slo_budget_centi: 10,
            slo_short_window: 200,
            slo_long_window: 800,
            queue_fire_depth: 32,
            anomaly_z_centi: 300,
            anomaly_warmup: 8,
        }
    }
}

impl WatchSpec {
    /// The full rule set the engine arms the watcher with.
    pub fn policy(&self) -> kairos_watch::WatchPolicy {
        let slo = PriorityClass::ALL
            .iter()
            .map(|&class| kairos_watch::SloRule {
                target_wait: self.slo_target_wait,
                budget_centi: self.slo_budget_centi,
                short_window: self.slo_short_window,
                long_window: self.slo_long_window,
                ..kairos_watch::SloRule::default_for(class)
            })
            .collect();
        let anomaly = (self.anomaly_z_centi > 0).then(|| kairos_watch::AnomalyRule {
            z_fire_centi: self.anomaly_z_centi,
            warmup: self.anomaly_warmup,
            ..kairos_watch::AnomalyRule::default()
        });
        kairos_watch::WatchPolicy {
            slo,
            queue: (self.queue_fire_depth > 0).then_some(kairos_watch::QueueDepthRule {
                fire_depth: self.queue_fire_depth,
                clear_depth: self.queue_fire_depth / 4,
            }),
            rejection: Some(kairos_watch::RejectionRateRule::default()),
            power_anomaly: anomaly.clone(),
            occupancy_anomaly: anomaly,
        }
    }
}

/// One per-class override of the platform power model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerOverride {
    /// Element-class label (`arm`, `dsp`, `fpga`, `mem`, `tst`, `io`).
    pub kind: String,
    /// Draw of a busy element of the class, milliwatts.
    pub busy_mw: u64,
    /// Draw of an idle healthy element of the class, milliwatts.
    pub idle_mw: u64,
}

/// Energy accounting over the run: the engine integrates sampled element
/// activity against a [`PowerModel`](kairos_platform::PowerModel) (the
/// paper-derived Table-I default rates, adjusted by `overrides`) and
/// embeds the account as the report's `energy` section. Like
/// [`WatchSpec`], a pure observer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Per-class rate overrides; an empty list keeps every default rate.
    pub overrides: Vec<PowerOverride>,
}

impl PowerSpec {
    /// The power model the energy meter integrates against.
    pub fn model(&self) -> kairos_platform::PowerModel {
        let mut model = kairos_platform::PowerModel::table1_defaults();
        for over in &self.overrides {
            if let Some(kind) =
                kairos_platform::ElementKind::ALL.iter().find(|k| k.label() == over.kind)
            {
                model.set_rate(*kind, kairos_platform::PowerRate::new(over.busy_mw, over.idle_mw));
            }
        }
        model
    }
}

/// A scripted element fault (and optional repair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Virtual time of the failure.
    pub at: u64,
    /// Index of the failing element on the scenario platform.
    pub element: u32,
    /// Ticks until the element is repaired; `None` leaves it failed.
    pub repair_after: Option<u64>,
}

/// A complete, seeded scenario description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (catalog key).
    pub name: String,
    /// Master seed; every random draw in the simulation derives from it.
    pub seed: u64,
    /// Sampling period of the metric time-series, in virtual ticks.
    pub sample_period: u64,
    /// Platform to manage.
    pub platform: PlatformSpec,
    /// Consecutive workload phases.
    pub phases: Vec<PhaseSpec>,
    /// Scripted element faults.
    pub faults: Vec<FaultSpec>,
    /// Whether applications evicted by a fault are immediately offered for
    /// re-admission on the remaining healthy elements.
    pub readmit_evicted: bool,
    /// Admission front-end policy. `None` admits directly (reject when
    /// full, the paper's behaviour); `Some` routes every request through
    /// a `kairos-admitd` priority queue with backpressure, retry and —
    /// under an enabled [`kairos_admitd::PreemptionPolicy`] — preemption
    /// of running lower-priority applications for blocked criticals.
    pub admission: Option<AdmitPolicy>,
    /// Periodic defragmenting compaction sweeps; `None` never compacts.
    pub defrag: Option<DefragSpec>,
    /// Sharded platform deployment. `None` runs the monolithic service
    /// (one manager owning the whole platform); `Some` partitions the
    /// platform into region shards behind a `kairos-cluster` service,
    /// with parallel admission probes and optional cross-shard
    /// rebalancing.
    pub cluster: Option<ClusterSpec>,
    /// Async serving front-end. `None` drives the service directly;
    /// `Some` wraps it in a `kairos-gateway` [`Gateway`](kairos_gateway::Gateway)
    /// (per-shard bounded request lanes on a deterministic
    /// single-threaded executor) and embeds the serving counters as the
    /// report's `gateway` section. With default knobs the wrapped run is
    /// byte-identical to the unwrapped one apart from that section.
    pub gateway: Option<GatewaySpec>,
    /// Whether the run records `kairos-telemetry` observability: spans,
    /// the full metric registry (every layer's counters, gauges and
    /// latency histograms) and per-shard flight recorders. The engine
    /// always runs the deterministic zero phase clock, so an enabled run
    /// is byte-identical to a disabled one apart from the extra
    /// `telemetry` section in the report (all duration histograms record
    /// zero-nanosecond observations and degenerate to attempt counters).
    pub telemetry: bool,
    /// Whether the run records per-request causal traces: every admission
    /// gets a trace root at the outermost service, queue residency and
    /// pipeline phases become spans, and the report embeds a `trace`
    /// section (per-class latency percentiles and the critical-path
    /// breakdown). Spans carry virtual-tick timestamps only, so — like
    /// [`Scenario::telemetry`] — an enabled run is byte-identical to a
    /// disabled one apart from the extra report section, and the trace
    /// itself is byte-reproducible run to run.
    pub trace: bool,
    /// Whether every manager runs with the design-time operating-point
    /// cache (`kairos-opcache`, [`kairos_core::KairosConfig::cache`])
    /// enabled: pipeline decisions are stored per
    /// `(application shape, platform state)` key and replayed on exact
    /// recurrence. The cache changes which work runs, never what is
    /// decided, so an enabled run is byte-identical to a disabled one
    /// apart from the extra `cache` section in the report (the
    /// `opcache_equivalence` suite pins exactly this).
    pub cache: bool,
    /// Energy/health watching (`kairos-watch`). `None` runs unwatched;
    /// `Some` arms the spec's monitor rule set over the run's event and
    /// sample streams and embeds `energy` and `health` sections in the
    /// report. The watcher is a pure observer — a watched run is
    /// byte-identical to an unwatched one apart from those sections.
    pub watch: Option<WatchSpec>,
    /// Energy accounting without alerting. `None` (with [`Scenario::watch`]
    /// also `None`) runs no meter; `Some` integrates sampled activity
    /// against the (possibly overridden) platform power model and embeds
    /// the `energy` section. A watched run meters implicitly — set this to
    /// override rates or to meter without monitors.
    pub power: Option<PowerSpec>,
}

impl Scenario {
    /// Total virtual duration: the sum of all phase durations.
    pub fn horizon(&self) -> u64 {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Structural sanity checks.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("scenario has no phases".into());
        }
        if self.sample_period == 0 {
            return Err("sample_period must be positive".into());
        }
        for phase in &self.phases {
            if phase.duration == 0 {
                return Err(format!("phase '{}' has zero duration", phase.name));
            }
            if phase.mean_interarrival > 0 && phase.mix.is_empty() {
                return Err(format!("phase '{}' has arrivals but an empty mix", phase.name));
            }
            if phase.mean_interarrival > 0 && phase.mix.iter().all(|e| e.weight == 0) {
                return Err(format!("phase '{}' mix has no positive weight", phase.name));
            }
            if phase.batch == 0 {
                return Err(format!("phase '{}' has a zero arrival batch", phase.name));
            }
            if let ArrivalDistribution::Pareto { alpha_centi } = phase.arrival {
                if alpha_centi <= 100 {
                    return Err(format!(
                        "phase '{}' Pareto shape {alpha_centi} must exceed 100 (alpha > 1)",
                        phase.name
                    ));
                }
            }
        }
        if let Some(policy) = &self.admission {
            policy.validate().map_err(|e| format!("admission policy: {e}"))?;
        }
        if let Some(defrag) = &self.defrag {
            if defrag.period == 0 {
                return Err("defrag period must be positive".into());
            }
            if defrag.max_moves == 0 {
                return Err("defrag with max_moves of 0 can never move anything".into());
            }
        }
        let elements = self.platform.build().element_count() as u32;
        if let Some(cluster) = &self.cluster {
            if cluster.shards == 0 {
                return Err("a cluster needs at least one shard".into());
            }
            if cluster.shards > elements as usize {
                return Err(format!(
                    "cannot split {elements} elements into {} shards",
                    cluster.shards
                ));
            }
            if let Some(rebalance) = &cluster.rebalance {
                if rebalance.period == 0 {
                    return Err("rebalance period must be positive".into());
                }
                if rebalance.max_moves == 0 {
                    return Err("rebalance with max_moves of 0 can never move anything".into());
                }
            }
        }
        if let Some(gateway) = &self.gateway {
            if gateway.channel_capacity == 0 {
                return Err("gateway channel_capacity must be at least 1".into());
            }
        }
        if let Some(watch) = &self.watch {
            if watch.slo_budget_centi == 0 || watch.slo_budget_centi > 100 {
                return Err(format!(
                    "watch slo_budget_centi {} must be within 1..=100",
                    watch.slo_budget_centi
                ));
            }
            if watch.slo_short_window == 0 || watch.slo_short_window >= watch.slo_long_window {
                return Err(format!(
                    "watch SLO windows must satisfy 0 < short ({}) < long ({})",
                    watch.slo_short_window, watch.slo_long_window
                ));
            }
        }
        if let Some(power) = &self.power {
            for over in &power.overrides {
                if !kairos_platform::ElementKind::ALL.iter().any(|k| k.label() == over.kind) {
                    return Err(format!("power override targets unknown kind '{}'", over.kind));
                }
                if over.idle_mw > over.busy_mw {
                    return Err(format!(
                        "power override for '{}' draws more idle ({}) than busy ({})",
                        over.kind, over.idle_mw, over.busy_mw
                    ));
                }
            }
        }
        let horizon = self.horizon();
        for fault in &self.faults {
            if fault.element >= elements {
                return Err(format!(
                    "fault at t={} targets element {} but the platform has {elements}",
                    fault.at, fault.element
                ));
            }
            if fault.at > horizon {
                return Err(format!("fault at t={} is beyond the horizon", fault.at));
            }
        }
        // Outage windows on one element must not overlap or even touch: the
        // platform's failure mark is a single flag, so an earlier fault's
        // repair would clear a later, still-active fault — and at the exact
        // repair tick the new fault is processed before the pending repair,
        // which would then silently cancel it.
        let mut by_element: Vec<&FaultSpec> = self.faults.iter().collect();
        by_element.sort_by_key(|f| (f.element, f.at));
        for pair in by_element.windows(2) {
            let (first, second) = (pair[0], pair[1]);
            if first.element != second.element {
                continue;
            }
            let repaired_by = first.repair_after.map(|after| first.at + after);
            if repaired_by.is_none_or(|t| t >= second.at) {
                return Err(format!(
                    "element {} faults again at t={} while its outage from t={} is still active",
                    second.element, second.at, first.at
                ));
            }
        }
        Ok(())
    }

    /// The scenario as an ordered JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.push("name", self.name.as_str());
        doc.push("seed", self.seed);
        doc.push("sample_period", self.sample_period);
        doc.push("platform", self.platform.name());
        let phases = self
            .phases
            .iter()
            .map(|p| {
                let mut phase = Json::object();
                phase.push("name", p.name.as_str());
                phase.push("duration", p.duration);
                phase.push("mean_interarrival", p.mean_interarrival);
                phase.push("mean_lifetime", p.mean_lifetime);
                phase.push("arrival", p.arrival.name());
                phase.push("priority", p.priority.to_string());
                phase.push("batch", p.batch);
                let mix = p
                    .mix
                    .iter()
                    .map(|e| {
                        let mut entry = Json::object();
                        entry.push("dataset", e.spec.name());
                        entry.push("weight", e.weight);
                        entry
                    })
                    .collect::<Vec<_>>();
                phase.push("mix", mix);
                phase
            })
            .collect::<Vec<_>>();
        doc.push("phases", phases);
        let faults = self
            .faults
            .iter()
            .map(|f| {
                let mut fault = Json::object();
                fault.push("at", f.at);
                fault.push("element", f.element);
                match f.repair_after {
                    Some(after) => fault.push("repair_after", after),
                    None => fault.push("repair_after", Json::Null),
                };
                fault
            })
            .collect::<Vec<_>>();
        doc.push("faults", faults);
        doc.push("readmit_evicted", self.readmit_evicted);
        match &self.admission {
            None => doc.push("admission", Json::Null),
            Some(policy) => {
                let mut adm = Json::object();
                let capacities =
                    policy.class_capacity.iter().map(|&c| Json::UInt(c as u64)).collect::<Vec<_>>();
                adm.push("class_capacity", capacities);
                match policy.max_wait {
                    Some(w) => adm.push("max_wait", w),
                    None => adm.push("max_wait", Json::Null),
                };
                adm.push("max_attempts", policy.max_attempts);
                adm.push("backoff_base", policy.backoff_base);
                adm.push("backoff_cap", policy.backoff_cap);
                adm.push("preemption", policy.preemption.to_string());
                adm.push("max_victims", policy.max_victims as u64);
                adm.push("victim_order", policy.victim_order.to_string());
                doc.push("admission", adm)
            }
        };
        match &self.defrag {
            None => doc.push("defrag", Json::Null),
            Some(spec) => {
                let mut defrag = Json::object();
                defrag.push("period", spec.period);
                defrag.push("max_moves", spec.max_moves as u64);
                doc.push("defrag", defrag)
            }
        };
        match &self.cluster {
            None => doc.push("cluster", Json::Null),
            Some(spec) => {
                let mut cluster = Json::object();
                cluster.push("shards", spec.shards as u64);
                cluster.push("policy", spec.policy.name());
                match &spec.rebalance {
                    None => cluster.push("rebalance", Json::Null),
                    Some(rebalance) => {
                        let mut r = Json::object();
                        r.push("period", rebalance.period);
                        r.push("max_moves", rebalance.max_moves as u64);
                        cluster.push("rebalance", r)
                    }
                };
                doc.push("cluster", cluster)
            }
        };
        match &self.gateway {
            None => doc.push("gateway", Json::Null),
            Some(spec) => {
                let mut gateway = Json::object();
                gateway.push("channel_capacity", spec.channel_capacity as u64);
                gateway.push("coalesce", spec.coalesce);
                doc.push("gateway", gateway)
            }
        };
        doc.push("telemetry", self.telemetry);
        doc.push("trace", self.trace);
        doc.push("cache", self.cache);
        match &self.watch {
            None => doc.push("watch", Json::Null),
            Some(spec) => {
                let mut watch = Json::object();
                watch.push("slo_target_wait", spec.slo_target_wait);
                watch.push("slo_budget_centi", spec.slo_budget_centi);
                watch.push("slo_short_window", spec.slo_short_window);
                watch.push("slo_long_window", spec.slo_long_window);
                watch.push("queue_fire_depth", spec.queue_fire_depth);
                watch.push("anomaly_z_centi", spec.anomaly_z_centi);
                watch.push("anomaly_warmup", spec.anomaly_warmup);
                doc.push("watch", watch)
            }
        };
        match &self.power {
            None => doc.push("power", Json::Null),
            Some(spec) => {
                let overrides = spec
                    .overrides
                    .iter()
                    .map(|o| {
                        let mut over = Json::object();
                        over.push("kind", o.kind.as_str());
                        over.push("busy_mw", o.busy_mw);
                        over.push("idle_mw", o.idle_mw);
                        over
                    })
                    .collect::<Vec<_>>();
                let mut power = Json::object();
                power.push("overrides", overrides);
                doc.push("power", power)
            }
        };
        doc
    }

    /// The built-in catalog of named scenarios.
    pub fn catalog() -> Vec<Scenario> {
        vec![
            steady_churn(),
            bursty_arrivals(),
            saturation(),
            hotspot_failures(),
            mixed_datasets(),
            priority_inversion(),
            overload_backpressure(),
            retry_storm(),
            critical_preempt(),
            migrate_vs_evict(),
            defrag_sweep(),
            batch_arrival_wave(),
            sharded_arrival_storm(),
            cross_shard_rebalance(),
            telemetry_probe_latency(),
            traced_preemption_storm(),
            cache_warm_storm(),
            cache_invalidation_churn(),
            gateway_arrival_storm(),
            gateway_backpressure(),
            slo_burn_storm(),
            power_cap_skew(),
        ]
    }

    /// Looks up a catalog scenario by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::catalog().into_iter().find(|s| s.name == name)
    }
}

fn spec(orientation: Orientation, size: SizeClass) -> DatasetSpec {
    DatasetSpec { orientation, size }
}

fn small_mix() -> Vec<MixEntry> {
    vec![
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 1),
    ]
}

/// Steady-state churn: applications arrive and depart at a balanced rate,
/// keeping the platform at moderate occupancy for a long horizon.
fn steady_churn() -> Scenario {
    Scenario {
        name: "steady-churn".to_owned(),
        seed: 0xC0FFEE,
        sample_period: 50,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("warmup", 500, 40, 400, small_mix()),
            PhaseSpec::new("steady", 2000, 25, 300, small_mix()),
            PhaseSpec::new("drain", 1500, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: None,
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Bursty arrivals: tight bursts alternate with quiet lulls, stressing
/// admission latency and the rejection behaviour under momentary overload.
fn bursty_arrivals() -> Scenario {
    let burst_mix = vec![
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Medium), 1),
    ];
    Scenario {
        name: "bursty-arrivals".to_owned(),
        seed: 0xB0057,
        sample_period: 25,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("burst-1", 300, 5, 250, burst_mix.clone()),
            PhaseSpec::new("lull-1", 500, 150, 250, burst_mix.clone()),
            PhaseSpec::new("burst-2", 300, 4, 250, burst_mix.clone()),
            PhaseSpec::new("lull-2", 500, 150, 250, burst_mix),
            PhaseSpec::new("drain", 800, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: None,
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// High-occupancy saturation: long-lived, resource-heavy applications pile
/// up until admissions mostly reject, probing behaviour at the capacity
/// cliff.
fn saturation() -> Scenario {
    let heavy_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Large), 1),
    ];
    Scenario {
        name: "saturation".to_owned(),
        seed: 0x5A7,
        sample_period: 40,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("fill", 1200, 15, 0, heavy_mix.clone()),
            PhaseSpec::new("saturated", 1200, 20, 6000, heavy_mix),
            PhaseSpec::new("drain", 600, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: None,
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Hotspot element failures: a steady workload while the DSPs of the
/// central CRISP package fail one after another (then recover), exercising
/// eviction and re-admission on the remaining healthy elements.
fn hotspot_failures() -> Scenario {
    // CRISP element ids: 0 = FPGA, packages of 12 from 1, ARM last.
    // Package 2 (the central one) spans ids 25..=36; its DSPs are 25..=33.
    let central_dsps = [28u32, 29, 31, 26, 32];
    let faults = central_dsps
        .iter()
        .enumerate()
        .map(|(i, &element)| FaultSpec {
            at: 400 + 250 * i as u64,
            element,
            repair_after: Some(700),
        })
        .collect();
    Scenario {
        name: "hotspot-failures".to_owned(),
        seed: 0xFA17,
        sample_period: 40,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("warmup", 400, 12, 900, small_mix()),
            PhaseSpec::new("failing", 1600, 12, 800, small_mix()),
            PhaseSpec::new("recovered", 800, 20, 400, small_mix()),
            PhaseSpec::new("drain", 1200, 0, 0, Vec::new()),
        ],
        faults,
        readmit_evicted: true,
        admission: None,
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Mixed-dataset workload: all six Table-I datasets arrive uniformly,
/// reproducing the paper's heterogeneous admission mix as a long-running
/// stream.
fn mixed_datasets() -> Scenario {
    Scenario {
        name: "mixed-datasets".to_owned(),
        seed: 0x717C,
        sample_period: 50,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("mixed", 2500, 35, 350, WorkloadMix::all_datasets().entries().to_vec()),
            PhaseSpec::new("drain", 1200, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: None,
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Priority inversion probe: a saturating stream of low-priority,
/// long-lived applications builds a backlog, then a burst of critical
/// requests arrives. With the admission queue in place the criticals jump
/// the older low-priority waiters the moment departures free capacity —
/// the inversion a plain FIFO front-end would suffer never happens.
fn priority_inversion() -> Scenario {
    let heavy_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Large), 1),
    ];
    Scenario {
        name: "priority-inversion".to_owned(),
        seed: 0x1A2B3C,
        sample_period: 40,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("fill-low", 900, 12, 2200, heavy_mix.clone())
                .with_priority(PriorityClass::Low),
            PhaseSpec::new("critical-burst", 700, 25, 500, small_mix())
                .with_priority(PriorityClass::Critical),
            PhaseSpec::new("drain", 2400, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [12, 8, 8, 16],
            max_wait: Some(1500),
            max_attempts: 10,
            backoff_base: 1,
            backoff_cap: 4,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Overload backpressure: heavy-tailed Pareto arrivals far above the
/// service rate slam a deliberately small queue. The class capacities are
/// the memory bound — once full, requests are refused with `QueueFull`
/// instead of growing the queue without limit.
fn overload_backpressure() -> Scenario {
    let heavy_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Medium), 1),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Large), 1),
    ];
    Scenario {
        name: "overload-backpressure".to_owned(),
        seed: 0x0F10AD,
        sample_period: 25,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("overload", 1800, 6, 1200, heavy_mix)
                .with_arrival(ArrivalDistribution::Pareto { alpha_centi: 160 }),
            PhaseSpec::new("drain", 2000, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [4, 4, 8, 4],
            max_wait: Some(600),
            max_attempts: 5,
            backoff_base: 1,
            backoff_cap: 8,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Retry storm: strictly periodic arrivals of mid-sized applications into
/// a platform kept near-full by long-lived residents. Almost every
/// admission needs several attempts, each re-triggered by a departure
/// (capacity event), exercising the deterministic backoff ladder.
fn retry_storm() -> Scenario {
    let resident_mix = vec![MixEntry::new(spec(Orientation::Computation, SizeClass::Large), 1)];
    let churn_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 1),
    ];
    Scenario {
        name: "retry-storm".to_owned(),
        seed: 0x57083,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("residents", 600, 18, 0, resident_mix).with_priority(PriorityClass::Low),
            PhaseSpec::new("storm", 1500, 14, 260, churn_mix)
                .with_arrival(ArrivalDistribution::Deterministic),
            PhaseSpec::new("drain", 1600, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [8, 8, 24, 12],
            max_wait: Some(900),
            max_attempts: 8,
            backoff_base: 1,
            backoff_cap: 2,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Critical preemption: a saturating stream of long-lived low-priority
/// applications owns the platform when a surge of criticals arrives. With
/// [`PreemptionPolicy::Evict`] each blocked critical evicts a minimal
/// victim set back into the queue (preempted, not dropped) and takes the
/// room — the report shows criticals admitted against a full platform,
/// with the preempted/readmitted/lost balance in the totals.
fn critical_preempt() -> Scenario {
    let heavy_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Large), 1),
    ];
    Scenario {
        name: "critical-preempt".to_owned(),
        seed: 0x9EE47,
        sample_period: 40,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("fill-low", 900, 12, 2600, heavy_mix).with_priority(PriorityClass::Low),
            PhaseSpec::new("critical-surge", 700, 28, 450, small_mix())
                .with_priority(PriorityClass::Critical),
            PhaseSpec::new("drain", 2600, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [12, 8, 8, 24],
            max_wait: Some(1600),
            max_attempts: 8,
            backoff_base: 1,
            backoff_cap: 4,
            preemption: PreemptionPolicy::Evict,
            max_victims: 4,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Migration versus evict-and-readmit: the same blocked-critical regime as
/// `critical-preempt`, but under [`PreemptionPolicy::Migrate`] victims are
/// live-migrated off the critical's target region whenever both footprints
/// fit at once — they keep running instead of being thrown back into the
/// queue. Rerunning this scenario with the policy flipped to `Evict` is
/// the paper-style baseline comparison: migration admits the same blocked
/// criticals with strictly fewer full evictions (the sim test suite pins
/// exactly that).
fn migrate_vs_evict() -> Scenario {
    // Small, long-lived low-priority residents: light enough that another
    // element's slack can absorb one, so make-before-break usually works.
    let light_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 2),
    ];
    let crit_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Medium), 1),
    ];
    Scenario {
        name: "migrate-vs-evict".to_owned(),
        seed: 0x316A7E,
        sample_period: 40,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("fill-low", 900, 12, 3000, light_mix).with_priority(PriorityClass::Low),
            PhaseSpec::new("critical-surge", 800, 40, 500, crit_mix)
                .with_priority(PriorityClass::Critical),
            PhaseSpec::new("drain", 2600, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [12, 8, 8, 32],
            max_wait: Some(1600),
            max_attempts: 8,
            backoff_base: 1,
            backoff_cap: 4,
            preemption: PreemptionPolicy::Migrate,
            max_victims: 6,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Defragmenting compaction sweeps: high churn of small applications
/// shreds the platform into scattered free crumbs; every 150 ticks a
/// `kairos_reloc::compact` sweep live-migrates up to four applications,
/// keeping only moves that strictly reduce external fragmentation. The
/// sampled fragmentation series shows the saw-tooth the sweeps cut into
/// the churn's upward drift.
fn defrag_sweep() -> Scenario {
    let churn_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 1),
    ];
    Scenario {
        name: "defrag-sweep".to_owned(),
        seed: 0xDF,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("churn", 2400, 18, 220, churn_mix),
            PhaseSpec::new("drain", 1200, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: None,
        defrag: Some(DefragSpec { period: 150, max_moves: 4 }),
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Batched arrival waves: applications arrive in tight synchronized
/// bursts — the multi-application reconfiguration points of Khasanov &
/// Castrillon's runtime — and each wave is admitted through
/// `ResourceService::submit_batch` as one operation: class-sorted, one
/// platform transaction, one priority-ordered drain pass. A smaller
/// critical wave phase interleaves priorities so the batched drain's
/// class ordering is actually exercised.
fn batch_arrival_wave() -> Scenario {
    let wave_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 1),
    ];
    let crit_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 2),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 1),
    ];
    Scenario {
        name: "batch-arrival-wave".to_owned(),
        seed: 0xBA7C4,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("normal-waves", 1500, 120, 500, wave_mix)
                .with_arrival(ArrivalDistribution::Deterministic)
                .with_batch(6),
            PhaseSpec::new("critical-waves", 600, 150, 400, crit_mix)
                .with_priority(PriorityClass::Critical)
                .with_batch(4),
            PhaseSpec::new("drain", 1500, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [8, 8, 24, 16],
            max_wait: Some(800),
            max_attempts: 6,
            backoff_base: 1,
            backoff_cap: 4,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Sharded arrival storm: a heavy-tailed Pareto storm of mixed-size
/// applications slams a CRISP platform partitioned into four region
/// shards. Every arrival fans out as parallel what-if probes across all
/// four shard managers; the least-loaded policy routes it to the shard
/// that would end up emptiest, and requests no shard can take queue at
/// the policy's fallback shard under per-shard backpressure. The same
/// storm against `shards: 1` is the monolithic baseline the
/// `cluster_probe` bench compares against.
fn sharded_arrival_storm() -> Scenario {
    // Mostly small applications: a shard is a third of the platform, and
    // an application must fit inside one shard (placements never span the
    // region boundary), so the storm is sized to shards, not to the
    // whole fabric.
    let storm_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 4),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 1),
    ];
    Scenario {
        name: "sharded-arrival-storm".to_owned(),
        seed: 0x54A2D,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("storm", 1600, 7, 400, storm_mix)
                .with_arrival(ArrivalDistribution::Pareto { alpha_centi: 150 }),
            PhaseSpec::new("drain", 1800, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [6, 6, 12, 6],
            max_wait: Some(700),
            max_attempts: 6,
            backoff_base: 1,
            backoff_cap: 4,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: Some(ClusterSpec {
            shards: 3,
            policy: PlacementPolicyKind::LeastLoaded,
            rebalance: None,
        }),
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Cross-shard rebalancing: long-lived applications arrive under the
/// *first-fit* placement policy, which deliberately piles everything
/// onto the lowest-id shards of a three-shard CRISP cluster. Every 150
/// ticks a rebalance sweep moves work from the most- to the least-loaded
/// shard — evict-and-readmit across the region boundary, two-phase with
/// rollback, each move surfacing as an id change in the report's
/// `rebalance_moves` total — so the load the placement policy skewed is
/// spread back out at run time.
fn cross_shard_rebalance() -> Scenario {
    let resident_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 1),
    ];
    Scenario {
        name: "cross-shard-rebalance".to_owned(),
        seed: 0xC7055,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("skewed-fill", 900, 16, 2800, resident_mix.clone()),
            PhaseSpec::new("steady", 900, 30, 700, resident_mix),
            PhaseSpec::new("drain", 1400, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: None,
        defrag: None,
        cluster: Some(ClusterSpec {
            shards: 3,
            policy: PlacementPolicyKind::FirstFit,
            rebalance: Some(RebalanceSpec { period: 150, max_moves: 2 }),
        }),
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Telemetry probe latency: the observability showcase. A three-shard
/// CRISP cluster under the least-loaded policy admits a queued, preempting
/// workload — low-priority residents first, then a critical surge that
/// live-migrates victims — with [`Scenario::telemetry`] enabled, so the
/// report embeds the full metric snapshot: per-shard probe-latency
/// histograms and placement-score distributions from the parallel probe
/// fan-out, pipeline-phase and transaction counters from every shard
/// manager, queue-transition counters from the admission front-ends, and
/// the two-phase migration tallies. Under the engine's deterministic zero
/// clock the snapshot is byte-reproducible run to run.
fn telemetry_probe_latency() -> Scenario {
    // The migrate-vs-evict recipe, sharded: small long-lived residents a
    // neighbouring element's slack can absorb, then criticals that force
    // make-before-break moves — every instrumented subsystem fires.
    let light_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 2),
    ];
    let crit_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Medium), 1),
    ];
    Scenario {
        name: "telemetry-probe-latency".to_owned(),
        seed: 0x7E1E,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("fill-low", 900, 10, 2800, light_mix).with_priority(PriorityClass::Low),
            PhaseSpec::new("critical-surge", 700, 35, 500, crit_mix)
                .with_priority(PriorityClass::Critical),
            PhaseSpec::new("drain", 2400, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [10, 8, 8, 24],
            max_wait: Some(1400),
            max_attempts: 8,
            backoff_base: 1,
            backoff_cap: 4,
            preemption: PreemptionPolicy::Migrate,
            max_victims: 4,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: Some(ClusterSpec {
            shards: 3,
            policy: PlacementPolicyKind::LeastLoaded,
            rebalance: None,
        }),
        gateway: None,
        telemetry: true,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Traced preemption storm: the causal-tracing showcase. A three-shard
/// CRISP cluster under the least-loaded policy fills with low-priority
/// residents, then takes a critical surge under an *evicting* preemption
/// policy — so traces capture the full repertoire: queue residency,
/// per-shard probe fan-outs, pipeline phases, retry attempts, and
/// `preempt.evict` detours with freshly rooted victim requeues. Runs with
/// [`Scenario::trace`] enabled (and the metric registry off), so the
/// report embeds the `trace` section and
/// `examples/scenario.rs --trace out.json` exports the Chrome-trace
/// timeline, byte-identical across runs.
fn traced_preemption_storm() -> Scenario {
    let light_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 2),
    ];
    let crit_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Medium), 1),
    ];
    Scenario {
        name: "traced-preemption-storm".to_owned(),
        seed: 0x7ACE,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("fill-low", 900, 10, 2800, light_mix).with_priority(PriorityClass::Low),
            PhaseSpec::new("critical-storm", 700, 30, 600, crit_mix)
                .with_priority(PriorityClass::Critical),
            PhaseSpec::new("drain", 2400, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [10, 8, 8, 24],
            max_wait: Some(1400),
            max_attempts: 8,
            backoff_base: 1,
            backoff_cap: 4,
            preemption: PreemptionPolicy::Evict,
            max_victims: 4,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: Some(ClusterSpec {
            shards: 3,
            policy: PlacementPolicyKind::LeastLoaded,
            rebalance: None,
        }),
        gateway: None,
        telemetry: false,
        trace: true,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Cache warm storm: the operating-point cache showcase. A three-shard
/// CRISP cluster under the least-loaded policy takes a long deterministic
/// storm of short-lived applications drawn from a deliberately tiny
/// dataset mixture, so the same application *shapes* recur hundreds of
/// times. With [`Scenario::cache`] enabled every shard manager runs a
/// `kairos-opcache` [`MappingCache`](kairos_core::CacheConfig): each
/// admit/release cycle returns the shard to a previously stamped platform
/// state, so repeat admissions replay the cached operating point in
/// O(claims) instead of re-running the four-phase pipeline. The report's
/// `cache` section pins the hit/miss split; the `opcache` bench runs the
/// same recipe warm versus cold.
fn cache_warm_storm() -> Scenario {
    // Two shapes only: recurrence, not variety, is the point — the storm
    // is a worst case for pipeline latency and a best case for the cache.
    let storm_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 1),
    ];
    Scenario {
        name: "cache-warm-storm".to_owned(),
        seed: 0xCA4E5,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("storm", 1800, 8, 200, storm_mix)
                .with_arrival(ArrivalDistribution::Deterministic),
            PhaseSpec::new("drain", 1000, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: None,
        defrag: None,
        cluster: Some(ClusterSpec {
            shards: 3,
            policy: PlacementPolicyKind::LeastLoaded,
            rebalance: None,
        }),
        gateway: None,
        telemetry: false,
        trace: false,
        cache: true,
        watch: None,
        power: None,
    }
}

/// Cache invalidation churn: the cache's fault-tolerance counterpart. A
/// three-shard CRISP cluster fills with small cached applications, then a
/// rolling script of element faults and repairs sweeps the fabric while
/// admissions continue. Every fault and repair bumps the platform's
/// mutation epoch and fires the invalidation hooks, dropping every cached
/// operating point that touches the element, so admissions after each
/// fault miss, fall back to the cold pipeline, and repopulate the cache
/// against the new platform state — stale points never admit onto dead
/// elements. The report's `cache` section pins the invalidation count;
/// the `opcache_invalidation` suite covers the same matrix fault kind by
/// fault kind.
fn cache_invalidation_churn() -> Scenario {
    let churn_mix = small_mix();
    // One outage per element, strictly separated in time: 600-tick
    // outages starting 300 ticks apart on distinct elements never
    // overlap, so the script passes outage validation. The targets are
    // DSPs spread across packages (and so across shard regions) — the
    // elements the sampled applications actually occupy, so each fault
    // evicts work and sweeps cached points.
    let faults = [5u32, 17, 29, 41]
        .iter()
        .enumerate()
        .map(|(i, &element)| FaultSpec {
            at: 500 + 300 * i as u64,
            element,
            repair_after: Some(600),
        })
        .collect();
    Scenario {
        name: "cache-invalidation-churn".to_owned(),
        seed: 0x1CACE,
        sample_period: 40,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("warmup", 500, 14, 600, churn_mix.clone()),
            PhaseSpec::new("faulting", 1700, 14, 500, churn_mix),
            PhaseSpec::new("drain", 1200, 0, 0, Vec::new()),
        ],
        faults,
        readmit_evicted: true,
        admission: None,
        defrag: None,
        cluster: Some(ClusterSpec {
            shards: 3,
            policy: PlacementPolicyKind::LeastLoaded,
            rebalance: None,
        }),
        gateway: None,
        telemetry: false,
        trace: false,
        cache: true,
        watch: None,
        power: None,
    }
}

/// Gateway arrival storm: the async serving-front-end showcase. The
/// sharded-arrival recipe — a heavy storm of small applications over a
/// three-shard least-loaded CRISP cluster — runs behind a
/// `kairos-gateway` [`Gateway`](kairos_gateway::Gateway) with the default
/// knobs: every admission streams through a per-shard bounded request
/// lane on the gateway's deterministic single-threaded executor before
/// reaching the cluster. The run is byte-identical to the unwrapped
/// scenario apart from the report's `gateway` section (the
/// `gateway_equivalence` suite pins exactly this), which tallies the
/// forwarded singles and per-lane traffic.
fn gateway_arrival_storm() -> Scenario {
    let storm_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 1),
    ];
    Scenario {
        name: "gateway-arrival-storm".to_owned(),
        seed: 0x6A7E,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("storm", 1600, 8, 300, storm_mix.clone()),
            PhaseSpec::new("tail", 600, 40, 300, storm_mix),
            PhaseSpec::new("drain", 1000, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: None,
        defrag: None,
        cluster: Some(ClusterSpec {
            shards: 3,
            policy: PlacementPolicyKind::LeastLoaded,
            rebalance: None,
        }),
        gateway: Some(GatewaySpec::default()),
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// Gateway backpressure: bounded request lanes under saturation. A
/// monolithic CRISP service takes a queued overload — admissions park in
/// the `kairos-admitd` front-end as non-terminal residents — behind a
/// gateway whose single lane holds only four requests, so once four
/// admissions are queued-but-unresolved the lane is full and later
/// requests park *in the gateway* until completions free slots (the
/// report's `parked` counter pins that the bound actually bit). The
/// shutdown drain then flushes every parked request, so the run still
/// retires its whole workload; double runs are byte-identical, but the
/// tiny lane changes when requests reach the service, so this scenario
/// is deliberately outside the sync-equivalence guarantee.
fn gateway_backpressure() -> Scenario {
    let surge_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Medium), 1),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Large), 1),
    ];
    Scenario {
        name: "gateway-backpressure".to_owned(),
        seed: 0x6A7E8,
        sample_period: 25,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("surge", 1200, 6, 900, surge_mix),
            PhaseSpec::new("drain", 1400, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [16, 16, 16, 48],
            max_wait: Some(900),
            max_attempts: 6,
            backoff_base: 1,
            backoff_cap: 4,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: None,
        gateway: Some(GatewaySpec { channel_capacity: 4, coalesce: false }),
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

/// SLO burn storm: a queued monolith rides through a calm warmup, a hard
/// overload surge, and a long light-traffic recovery. During the surge
/// almost every admission waits far past the 120-tick SLO target, so both
/// burn-rate windows blow through the 2x-budget threshold and the
/// per-class SLO alerts fire (the rejection-rate monitor typically trips
/// too); the recovery's prompt admissions then drain the windows and the
/// alerts clear before the horizon. The anomaly detectors are disabled —
/// a churning workload's power series is legitimately jumpy, and this
/// scenario is the SLO story (`power-cap-skew` is the anomaly one). The
/// canonical fire-AND-clear demonstration for the `kairos-watch`
/// monitors — CI smoke-diffs it and `tests/watch_observer.rs` asserts
/// the full alert lifecycle.
fn slo_burn_storm() -> Scenario {
    let surge_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Medium), 1),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Large), 1),
    ];
    Scenario {
        name: "slo-burn-storm".to_owned(),
        seed: 0x510B,
        sample_period: 25,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("calm", 600, 30, 250, small_mix()),
            PhaseSpec::new("surge", 1200, 6, 900, surge_mix),
            PhaseSpec::new("recovery", 1600, 40, 150, small_mix()),
            PhaseSpec::new("drain", 800, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: Some(AdmitPolicy {
            class_capacity: [16, 16, 16, 48],
            max_wait: Some(900),
            max_attempts: 6,
            backoff_base: 1,
            backoff_cap: 4,
            ..AdmitPolicy::default()
        }),
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: Some(WatchSpec { anomaly_z_centi: 0, ..WatchSpec::default() }),
        power: None,
    }
}

/// Power-cap skew: long-lived residents fill a three-shard CRISP cluster,
/// then six of package 2's nine DSPs black out for 600 ticks mid-run. The
/// package's draw collapses, so the per-package EWMA/z-score power
/// anomaly detector trips on `pkg2` (shard attribution included) — and
/// because the outage evicts the residents for good (no re-admission, no
/// later arrivals), the package never returns to its pre-fault draw and
/// the alert rides to the horizon: a permanent-capability-loss signal,
/// the complement of `slo-burn-storm`'s fire-and-clear lifecycle. The
/// scenario also overrides the DSP power rates, exercising the
/// [`PowerSpec`] override path; CI smoke-diffs the run and
/// `tests/watch_observer.rs` asserts the anomaly window.
fn power_cap_skew() -> Scenario {
    let resident_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 1),
    ];
    // Package 2 spans elements 25..=36 on the CRISP platform; its nine
    // DSPs are 25..=33. Six of them fail together and repair together.
    let faults = (25u32..=30)
        .map(|element| FaultSpec { at: 900, element, repair_after: Some(600) })
        .collect();
    Scenario {
        name: "power-cap-skew".to_owned(),
        seed: 0x50CA9,
        sample_period: 30,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("fill", 600, 20, 0, resident_mix),
            PhaseSpec::new("steady", 1800, 0, 0, Vec::new()),
        ],
        faults,
        readmit_evicted: false,
        admission: None,
        defrag: None,
        cluster: Some(ClusterSpec {
            shards: 3,
            policy: PlacementPolicyKind::FirstFit,
            rebalance: None,
        }),
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: Some(WatchSpec { queue_fire_depth: 0, ..WatchSpec::default() }),
        power: Some(PowerSpec {
            overrides: vec![PowerOverride { kind: "dsp".to_owned(), busy_mw: 400, idle_mw: 100 }],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_twenty_two_valid_named_scenarios() {
        let catalog = Scenario::catalog();
        assert_eq!(catalog.len(), 22);
        let mut names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        for scenario in &catalog {
            scenario.validate().unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert!(scenario.horizon() > 0);
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22, "catalog names must be unique");
        // The queueing, preemption and batching scenarios all carry an
        // admission policy; the five legacy scenarios and the defrag
        // sweep stay on the direct path.
        let queued: Vec<&str> =
            catalog.iter().filter(|s| s.admission.is_some()).map(|s| s.name.as_str()).collect();
        assert_eq!(
            queued,
            vec![
                "priority-inversion",
                "overload-backpressure",
                "retry-storm",
                "critical-preempt",
                "migrate-vs-evict",
                "batch-arrival-wave",
                "sharded-arrival-storm",
                "telemetry-probe-latency",
                "traced-preemption-storm",
                "gateway-backpressure",
                "slo-burn-storm",
            ]
        );
        let clustered: Vec<&str> =
            catalog.iter().filter(|s| s.cluster.is_some()).map(|s| s.name.as_str()).collect();
        assert_eq!(
            clustered,
            vec![
                "sharded-arrival-storm",
                "cross-shard-rebalance",
                "telemetry-probe-latency",
                "traced-preemption-storm",
                "cache-warm-storm",
                "cache-invalidation-churn",
                "gateway-arrival-storm",
                "power-cap-skew",
            ]
        );
        // Exactly the two gateway scenarios run behind the async serving
        // front-end; only the backpressure one narrows the lane bound.
        let gatewayed: Vec<&str> =
            catalog.iter().filter(|s| s.gateway.is_some()).map(|s| s.name.as_str()).collect();
        assert_eq!(gatewayed, vec!["gateway-arrival-storm", "gateway-backpressure"]);
        let narrow: Vec<&str> = catalog
            .iter()
            .filter(|s| s.gateway.is_some_and(|g| g.channel_capacity < 64))
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(narrow, vec!["gateway-backpressure"]);
        let rebalancing: Vec<&str> = catalog
            .iter()
            .filter(|s| s.cluster.is_some_and(|c| c.rebalance.is_some()))
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(rebalancing, vec!["cross-shard-rebalance"]);
        let batched: Vec<&str> = catalog
            .iter()
            .filter(|s| s.phases.iter().any(|p| p.batch > 1))
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(batched, vec!["batch-arrival-wave"]);
        let preempting: Vec<&str> = catalog
            .iter()
            .filter(|s| s.admission.is_some_and(|p| p.preemption != PreemptionPolicy::Disabled))
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            preempting,
            vec![
                "critical-preempt",
                "migrate-vs-evict",
                "telemetry-probe-latency",
                "traced-preemption-storm",
            ]
        );
        let defragging: Vec<&str> =
            catalog.iter().filter(|s| s.defrag.is_some()).map(|s| s.name.as_str()).collect();
        assert_eq!(defragging, vec!["defrag-sweep"]);
        // Exactly one scenario runs with telemetry recording on; all the
        // legacy entries stay byte-identical to their pre-telemetry runs.
        let telemetric: Vec<&str> =
            catalog.iter().filter(|s| s.telemetry).map(|s| s.name.as_str()).collect();
        assert_eq!(telemetric, vec!["telemetry-probe-latency"]);
        // Exactly one scenario runs with request tracing on.
        let traced: Vec<&str> =
            catalog.iter().filter(|s| s.trace).map(|s| s.name.as_str()).collect();
        assert_eq!(traced, vec!["traced-preemption-storm"]);
        // Exactly the two opcache scenarios run with the operating-point
        // cache enabled; every legacy entry keeps cache-off byte
        // identity with its pre-opcache report.
        let cached: Vec<&str> =
            catalog.iter().filter(|s| s.cache).map(|s| s.name.as_str()).collect();
        assert_eq!(cached, vec!["cache-warm-storm", "cache-invalidation-churn"]);
        // Exactly the two watch scenarios run monitored; only the power
        // skew meters with overridden rates, and every legacy entry keeps
        // watch-off byte identity with its pre-watch report.
        let watched: Vec<&str> =
            catalog.iter().filter(|s| s.watch.is_some()).map(|s| s.name.as_str()).collect();
        assert_eq!(watched, vec!["slo-burn-storm", "power-cap-skew"]);
        let powered: Vec<&str> =
            catalog.iter().filter(|s| s.power.is_some()).map(|s| s.name.as_str()).collect();
        assert_eq!(powered, vec!["power-cap-skew"]);
    }

    #[test]
    fn by_name_finds_catalog_entries() {
        assert!(Scenario::by_name("steady-churn").is_some());
        assert!(Scenario::by_name("hotspot-failures").is_some());
        assert!(Scenario::by_name("overload-backpressure").is_some());
        assert!(Scenario::by_name("priority-inversion").is_some());
        assert!(Scenario::by_name("retry-storm").is_some());
        assert!(Scenario::by_name("nonsense").is_none());
    }

    #[test]
    fn validate_rejects_broken_scenarios() {
        let mut s = Scenario::by_name("steady-churn").unwrap();
        s.phases.clear();
        assert!(s.validate().is_err());

        let mut s = Scenario::by_name("steady-churn").unwrap();
        s.faults.push(FaultSpec { at: 0, element: 10_000, repair_after: None });
        assert!(s.validate().unwrap_err().contains("element"));

        let mut s = Scenario::by_name("steady-churn").unwrap();
        s.phases[0].mix.clear();
        assert!(s.validate().unwrap_err().contains("empty mix"));

        let mut s = Scenario::by_name("steady-churn").unwrap();
        s.phases[0].arrival = ArrivalDistribution::Pareto { alpha_centi: 100 };
        assert!(s.validate().unwrap_err().contains("Pareto"));

        let mut s = Scenario::by_name("batch-arrival-wave").unwrap();
        s.phases[0].batch = 0;
        assert!(s.validate().unwrap_err().contains("batch"));

        let mut s = Scenario::by_name("overload-backpressure").unwrap();
        s.admission.as_mut().unwrap().max_attempts = 0;
        assert!(s.validate().unwrap_err().contains("admission policy"));

        let mut s = Scenario::by_name("sharded-arrival-storm").unwrap();
        s.cluster.as_mut().unwrap().shards = 0;
        assert!(s.validate().unwrap_err().contains("shard"));

        let mut s = Scenario::by_name("sharded-arrival-storm").unwrap();
        s.cluster.as_mut().unwrap().shards = 10_000;
        assert!(s.validate().unwrap_err().contains("shards"));

        let mut s = Scenario::by_name("cross-shard-rebalance").unwrap();
        s.cluster.as_mut().unwrap().rebalance.as_mut().unwrap().max_moves = 0;
        assert!(s.validate().unwrap_err().contains("rebalance"));

        let mut s = Scenario::by_name("gateway-backpressure").unwrap();
        s.gateway.as_mut().unwrap().channel_capacity = 0;
        assert!(s.validate().unwrap_err().contains("channel_capacity"));

        let mut s = Scenario::by_name("slo-burn-storm").unwrap();
        s.watch.as_mut().unwrap().slo_budget_centi = 0;
        assert!(s.validate().unwrap_err().contains("slo_budget_centi"));

        let mut s = Scenario::by_name("slo-burn-storm").unwrap();
        s.watch.as_mut().unwrap().slo_short_window = 800;
        assert!(s.validate().unwrap_err().contains("short"));

        let mut s = Scenario::by_name("power-cap-skew").unwrap();
        s.power.as_mut().unwrap().overrides[0].kind = "gpu".to_owned();
        assert!(s.validate().unwrap_err().contains("unknown kind"));

        let mut s = Scenario::by_name("power-cap-skew").unwrap();
        s.power.as_mut().unwrap().overrides[0].idle_mw = 10_000;
        assert!(s.validate().unwrap_err().contains("idle"));
    }

    #[test]
    fn validate_rejects_overlapping_outages_on_one_element() {
        let mut s = Scenario::by_name("steady-churn").unwrap();
        // Second fault strikes while the first outage is still active.
        s.faults = vec![
            FaultSpec { at: 100, element: 5, repair_after: Some(300) },
            FaultSpec { at: 200, element: 5, repair_after: Some(300) },
        ];
        assert!(s.validate().unwrap_err().contains("still active"));

        // A permanent outage can never be followed by another fault there.
        s.faults = vec![
            FaultSpec { at: 100, element: 5, repair_after: None },
            FaultSpec { at: 900, element: 5, repair_after: None },
        ];
        assert!(s.validate().unwrap_err().contains("still active"));

        // A fault at the exact repair tick would race the pending repair
        // (the fault is processed first, the repair then cancels it).
        s.faults = vec![
            FaultSpec { at: 100, element: 5, repair_after: Some(100) },
            FaultSpec { at: 200, element: 5, repair_after: None },
        ];
        assert!(s.validate().unwrap_err().contains("still active"));

        // Strictly separated outages and different elements are fine.
        s.faults = vec![
            FaultSpec { at: 100, element: 5, repair_after: Some(100) },
            FaultSpec { at: 201, element: 5, repair_after: None },
            FaultSpec { at: 150, element: 6, repair_after: Some(10) },
        ];
        s.validate().unwrap();
    }

    #[test]
    fn scenario_json_is_deterministic_and_complete() {
        let s = Scenario::by_name("hotspot-failures").unwrap();
        let a = s.to_json().render();
        let b = s.to_json().render();
        assert_eq!(a, b);
        for key in [
            "\"name\"",
            "\"seed\"",
            "\"phases\"",
            "\"faults\"",
            "\"readmit_evicted\"",
            "\"telemetry\"",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
        assert!(a.contains("\"admission\": null"), "direct scenarios render a null admission");
        assert!(a.contains("\"watch\": null"), "unwatched scenarios render a null watch");
        assert!(a.contains("\"power\": null"), "unmetered scenarios render a null power");
        let watched = Scenario::by_name("power-cap-skew").unwrap().to_json().render();
        for key in ["\"slo_target_wait\"", "\"anomaly_z_centi\"", "\"overrides\"", "\"busy_mw\""] {
            assert!(watched.contains(key), "missing {key} in {watched}");
        }
        let queued = Scenario::by_name("retry-storm").unwrap().to_json().render();
        for key in [
            "\"class_capacity\"",
            "\"max_wait\"",
            "\"max_attempts\"",
            "\"backoff_base\"",
            "\"arrival\"",
        ] {
            assert!(queued.contains(key), "missing {key} in {queued}");
        }
        assert!(queued.contains("\"deterministic\""));
    }

    #[test]
    fn platform_specs_build() {
        assert_eq!(PlatformSpec::Crisp.build().element_count(), 62);
        assert_eq!(PlatformSpec::DspMesh { width: 3, height: 2 }.build().element_count(), 6);
        assert!(
            PlatformSpec::HeterogeneousMesh { width: 3, height: 3 }.build().element_count() >= 9
        );
    }
}
