//! Scenario descriptions and the built-in catalog.
//!
//! A [`Scenario`] is a complete, seeded description of a multi-application
//! experiment: the platform, a sequence of workload phases (each with its
//! own dataset mixture, arrival rate and lifetime distribution), and a
//! script of element faults. Identical scenarios produce identical
//! simulations — the engine draws every random choice from the scenario
//! seed.
//!
//! [`Scenario::catalog`] ships five named scenarios spanning the regimes
//! the paper motivates: steady churn, bursty arrivals, saturation, hotspot
//! element failures and a mixed-dataset workload.

use serde::{Deserialize, Serialize};

use kairos_appgen::{DatasetSpec, MixEntry, Orientation, SizeClass, WorkloadMix};
use kairos_platform::{topology, Platform};

use crate::json::Json;

/// The platform a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformSpec {
    /// The paper's CRISP General Stream Processor (62 elements).
    Crisp,
    /// A homogeneous DSP mesh.
    DspMesh {
        /// Mesh width in elements.
        width: usize,
        /// Mesh height in elements.
        height: usize,
    },
    /// A heterogeneous mesh (ARM/DSP/FPGA/memory mix).
    HeterogeneousMesh {
        /// Mesh width in elements.
        width: usize,
        /// Mesh height in elements.
        height: usize,
    },
}

impl PlatformSpec {
    /// Instantiates the platform.
    pub fn build(&self) -> Platform {
        match *self {
            PlatformSpec::Crisp => topology::crisp(),
            PlatformSpec::DspMesh { width, height } => topology::dsp_mesh(width, height),
            PlatformSpec::HeterogeneousMesh { width, height } => {
                topology::heterogeneous_mesh(width, height)
            }
        }
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> String {
        match *self {
            PlatformSpec::Crisp => "crisp".to_owned(),
            PlatformSpec::DspMesh { width, height } => format!("dsp-mesh-{width}x{height}"),
            PlatformSpec::HeterogeneousMesh { width, height } => {
                format!("het-mesh-{width}x{height}")
            }
        }
    }
}

/// One workload phase: a time window with its own arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Phase name, used in per-phase report rows.
    pub name: String,
    /// Phase length in virtual ticks.
    pub duration: u64,
    /// Mean exponential inter-arrival gap; `0` disables arrivals (a drain
    /// or quiescent phase).
    pub mean_interarrival: u64,
    /// Mean exponential application lifetime; `0` means admitted
    /// applications never depart on their own.
    pub mean_lifetime: u64,
    /// Dataset mixture arrivals are drawn from.
    pub mix: Vec<MixEntry>,
}

impl PhaseSpec {
    /// A phase named `name` lasting `duration` ticks.
    pub fn new(
        name: impl Into<String>,
        duration: u64,
        mean_interarrival: u64,
        mean_lifetime: u64,
        mix: Vec<MixEntry>,
    ) -> Self {
        PhaseSpec { name: name.into(), duration, mean_interarrival, mean_lifetime, mix }
    }

    /// Whether the phase generates arrivals at all.
    pub fn has_arrivals(&self) -> bool {
        self.mean_interarrival > 0 && !self.mix.is_empty()
    }
}

/// A scripted element fault (and optional repair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Virtual time of the failure.
    pub at: u64,
    /// Index of the failing element on the scenario platform.
    pub element: u32,
    /// Ticks until the element is repaired; `None` leaves it failed.
    pub repair_after: Option<u64>,
}

/// A complete, seeded scenario description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (catalog key).
    pub name: String,
    /// Master seed; every random draw in the simulation derives from it.
    pub seed: u64,
    /// Sampling period of the metric time-series, in virtual ticks.
    pub sample_period: u64,
    /// Platform to manage.
    pub platform: PlatformSpec,
    /// Consecutive workload phases.
    pub phases: Vec<PhaseSpec>,
    /// Scripted element faults.
    pub faults: Vec<FaultSpec>,
    /// Whether applications evicted by a fault are immediately offered for
    /// re-admission on the remaining healthy elements.
    pub readmit_evicted: bool,
}

impl Scenario {
    /// Total virtual duration: the sum of all phase durations.
    pub fn horizon(&self) -> u64 {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Structural sanity checks.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("scenario has no phases".into());
        }
        if self.sample_period == 0 {
            return Err("sample_period must be positive".into());
        }
        for phase in &self.phases {
            if phase.duration == 0 {
                return Err(format!("phase '{}' has zero duration", phase.name));
            }
            if phase.mean_interarrival > 0 && phase.mix.is_empty() {
                return Err(format!("phase '{}' has arrivals but an empty mix", phase.name));
            }
            if phase.mean_interarrival > 0 && phase.mix.iter().all(|e| e.weight == 0) {
                return Err(format!("phase '{}' mix has no positive weight", phase.name));
            }
        }
        let elements = self.platform.build().element_count() as u32;
        let horizon = self.horizon();
        for fault in &self.faults {
            if fault.element >= elements {
                return Err(format!(
                    "fault at t={} targets element {} but the platform has {elements}",
                    fault.at, fault.element
                ));
            }
            if fault.at > horizon {
                return Err(format!("fault at t={} is beyond the horizon", fault.at));
            }
        }
        // Outage windows on one element must not overlap or even touch: the
        // platform's failure mark is a single flag, so an earlier fault's
        // repair would clear a later, still-active fault — and at the exact
        // repair tick the new fault is processed before the pending repair,
        // which would then silently cancel it.
        let mut by_element: Vec<&FaultSpec> = self.faults.iter().collect();
        by_element.sort_by_key(|f| (f.element, f.at));
        for pair in by_element.windows(2) {
            let (first, second) = (pair[0], pair[1]);
            if first.element != second.element {
                continue;
            }
            let repaired_by = first.repair_after.map(|after| first.at + after);
            if repaired_by.is_none_or(|t| t >= second.at) {
                return Err(format!(
                    "element {} faults again at t={} while its outage from t={} is still active",
                    second.element, second.at, first.at
                ));
            }
        }
        Ok(())
    }

    /// The scenario as an ordered JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.push("name", self.name.as_str());
        doc.push("seed", self.seed);
        doc.push("sample_period", self.sample_period);
        doc.push("platform", self.platform.name());
        let phases = self
            .phases
            .iter()
            .map(|p| {
                let mut phase = Json::object();
                phase.push("name", p.name.as_str());
                phase.push("duration", p.duration);
                phase.push("mean_interarrival", p.mean_interarrival);
                phase.push("mean_lifetime", p.mean_lifetime);
                let mix = p
                    .mix
                    .iter()
                    .map(|e| {
                        let mut entry = Json::object();
                        entry.push("dataset", e.spec.name());
                        entry.push("weight", e.weight);
                        entry
                    })
                    .collect::<Vec<_>>();
                phase.push("mix", mix);
                phase
            })
            .collect::<Vec<_>>();
        doc.push("phases", phases);
        let faults = self
            .faults
            .iter()
            .map(|f| {
                let mut fault = Json::object();
                fault.push("at", f.at);
                fault.push("element", f.element);
                match f.repair_after {
                    Some(after) => fault.push("repair_after", after),
                    None => fault.push("repair_after", Json::Null),
                };
                fault
            })
            .collect::<Vec<_>>();
        doc.push("faults", faults);
        doc.push("readmit_evicted", self.readmit_evicted);
        doc
    }

    /// The built-in catalog of named scenarios.
    pub fn catalog() -> Vec<Scenario> {
        vec![steady_churn(), bursty_arrivals(), saturation(), hotspot_failures(), mixed_datasets()]
    }

    /// Looks up a catalog scenario by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::catalog().into_iter().find(|s| s.name == name)
    }
}

fn spec(orientation: Orientation, size: SizeClass) -> DatasetSpec {
    DatasetSpec { orientation, size }
}

fn small_mix() -> Vec<MixEntry> {
    vec![
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Small), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 1),
    ]
}

/// Steady-state churn: applications arrive and depart at a balanced rate,
/// keeping the platform at moderate occupancy for a long horizon.
fn steady_churn() -> Scenario {
    Scenario {
        name: "steady-churn".to_owned(),
        seed: 0xC0FFEE,
        sample_period: 50,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("warmup", 500, 40, 400, small_mix()),
            PhaseSpec::new("steady", 2000, 25, 300, small_mix()),
            PhaseSpec::new("drain", 1500, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
    }
}

/// Bursty arrivals: tight bursts alternate with quiet lulls, stressing
/// admission latency and the rejection behaviour under momentary overload.
fn bursty_arrivals() -> Scenario {
    let burst_mix = vec![
        MixEntry::new(spec(Orientation::Communication, SizeClass::Small), 3),
        MixEntry::new(spec(Orientation::Communication, SizeClass::Medium), 1),
    ];
    Scenario {
        name: "bursty-arrivals".to_owned(),
        seed: 0xB0057,
        sample_period: 25,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("burst-1", 300, 5, 250, burst_mix.clone()),
            PhaseSpec::new("lull-1", 500, 150, 250, burst_mix.clone()),
            PhaseSpec::new("burst-2", 300, 4, 250, burst_mix.clone()),
            PhaseSpec::new("lull-2", 500, 150, 250, burst_mix),
            PhaseSpec::new("drain", 800, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
    }
}

/// High-occupancy saturation: long-lived, resource-heavy applications pile
/// up until admissions mostly reject, probing behaviour at the capacity
/// cliff.
fn saturation() -> Scenario {
    let heavy_mix = vec![
        MixEntry::new(spec(Orientation::Computation, SizeClass::Medium), 2),
        MixEntry::new(spec(Orientation::Computation, SizeClass::Large), 1),
    ];
    Scenario {
        name: "saturation".to_owned(),
        seed: 0x5A7,
        sample_period: 40,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("fill", 1200, 15, 0, heavy_mix.clone()),
            PhaseSpec::new("saturated", 1200, 20, 6000, heavy_mix),
            PhaseSpec::new("drain", 600, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
    }
}

/// Hotspot element failures: a steady workload while the DSPs of the
/// central CRISP package fail one after another (then recover), exercising
/// eviction and re-admission on the remaining healthy elements.
fn hotspot_failures() -> Scenario {
    // CRISP element ids: 0 = FPGA, packages of 12 from 1, ARM last.
    // Package 2 (the central one) spans ids 25..=36; its DSPs are 25..=33.
    let central_dsps = [28u32, 29, 31, 26, 32];
    let faults = central_dsps
        .iter()
        .enumerate()
        .map(|(i, &element)| FaultSpec {
            at: 400 + 250 * i as u64,
            element,
            repair_after: Some(700),
        })
        .collect();
    Scenario {
        name: "hotspot-failures".to_owned(),
        seed: 0xFA17,
        sample_period: 40,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("warmup", 400, 12, 900, small_mix()),
            PhaseSpec::new("failing", 1600, 12, 800, small_mix()),
            PhaseSpec::new("recovered", 800, 20, 400, small_mix()),
            PhaseSpec::new("drain", 1200, 0, 0, Vec::new()),
        ],
        faults,
        readmit_evicted: true,
    }
}

/// Mixed-dataset workload: all six Table-I datasets arrive uniformly,
/// reproducing the paper's heterogeneous admission mix as a long-running
/// stream.
fn mixed_datasets() -> Scenario {
    Scenario {
        name: "mixed-datasets".to_owned(),
        seed: 0x717C,
        sample_period: 50,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("mixed", 2500, 35, 350, WorkloadMix::all_datasets().entries().to_vec()),
            PhaseSpec::new("drain", 1200, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_five_valid_named_scenarios() {
        let catalog = Scenario::catalog();
        assert_eq!(catalog.len(), 5);
        let mut names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        for scenario in &catalog {
            scenario.validate().unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert!(scenario.horizon() > 0);
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5, "catalog names must be unique");
    }

    #[test]
    fn by_name_finds_catalog_entries() {
        assert!(Scenario::by_name("steady-churn").is_some());
        assert!(Scenario::by_name("hotspot-failures").is_some());
        assert!(Scenario::by_name("nonsense").is_none());
    }

    #[test]
    fn validate_rejects_broken_scenarios() {
        let mut s = Scenario::by_name("steady-churn").unwrap();
        s.phases.clear();
        assert!(s.validate().is_err());

        let mut s = Scenario::by_name("steady-churn").unwrap();
        s.faults.push(FaultSpec { at: 0, element: 10_000, repair_after: None });
        assert!(s.validate().unwrap_err().contains("element"));

        let mut s = Scenario::by_name("steady-churn").unwrap();
        s.phases[0].mix.clear();
        assert!(s.validate().unwrap_err().contains("empty mix"));
    }

    #[test]
    fn validate_rejects_overlapping_outages_on_one_element() {
        let mut s = Scenario::by_name("steady-churn").unwrap();
        // Second fault strikes while the first outage is still active.
        s.faults = vec![
            FaultSpec { at: 100, element: 5, repair_after: Some(300) },
            FaultSpec { at: 200, element: 5, repair_after: Some(300) },
        ];
        assert!(s.validate().unwrap_err().contains("still active"));

        // A permanent outage can never be followed by another fault there.
        s.faults = vec![
            FaultSpec { at: 100, element: 5, repair_after: None },
            FaultSpec { at: 900, element: 5, repair_after: None },
        ];
        assert!(s.validate().unwrap_err().contains("still active"));

        // A fault at the exact repair tick would race the pending repair
        // (the fault is processed first, the repair then cancels it).
        s.faults = vec![
            FaultSpec { at: 100, element: 5, repair_after: Some(100) },
            FaultSpec { at: 200, element: 5, repair_after: None },
        ];
        assert!(s.validate().unwrap_err().contains("still active"));

        // Strictly separated outages and different elements are fine.
        s.faults = vec![
            FaultSpec { at: 100, element: 5, repair_after: Some(100) },
            FaultSpec { at: 201, element: 5, repair_after: None },
            FaultSpec { at: 150, element: 6, repair_after: Some(10) },
        ];
        s.validate().unwrap();
    }

    #[test]
    fn scenario_json_is_deterministic_and_complete() {
        let s = Scenario::by_name("hotspot-failures").unwrap();
        let a = s.to_json().render();
        let b = s.to_json().render();
        assert_eq!(a, b);
        for key in ["\"name\"", "\"seed\"", "\"phases\"", "\"faults\"", "\"readmit_evicted\""] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
    }

    #[test]
    fn platform_specs_build() {
        assert_eq!(PlatformSpec::Crisp.build().element_count(), 62);
        assert_eq!(PlatformSpec::DspMesh { width: 3, height: 2 }.build().element_count(), 6);
        assert!(
            PlatformSpec::HeterogeneousMesh { width: 3, height: 3 }.build().element_count() >= 9
        );
    }
}
