//! Integration tests of the relocation scenarios: preemption accounting
//! balances, the migrate-versus-evict acceptance comparison, and
//! defragmentation sweeps.

use kairos_admitd::PreemptionPolicy;
use kairos_sim::{Scenario, Simulator};

#[test]
fn critical_preempt_evicts_and_balances() {
    let mut simulator = Simulator::new(Scenario::by_name("critical-preempt").unwrap()).unwrap();
    let report = simulator.run();
    assert!(report.totals.preemptions > 0, "the scenario must actually preempt");
    // Preempted victims are requeued, never dropped silently: each one
    // either made it back in or reached an accounted terminal outcome.
    assert_eq!(
        report.totals.preemptions,
        report.totals.preempt_readmissions + report.totals.lost_to_preemption,
        "every preempted app is either readmitted or accounted as lost"
    );
    // First-class accounting is untouched by the relocation machinery.
    assert_eq!(report.totals.arrivals, report.totals.admissions + report.totals.rejections);
    let crit = report.queue.by_class.iter().find(|c| c.class == "critical").unwrap();
    assert!(crit.admitted > 0, "preemption exists to admit blocked criticals");
    // Accounting balance (claims = releases + live): after the drain
    // phase every claim has been released back.
    assert_eq!(report.final_state.admitted_apps, 0);
    assert!(
        simulator.manager().platform().is_idle(),
        "claims must balance releases across all preempt paths"
    );
}

/// The acceptance comparison: the `migrate-vs-evict` scenario run as
/// shipped (migration) against the identical scenario with the policy
/// flipped to evict-and-readmit. Migration admits the same blocked
/// criticals with strictly fewer full evictions — victims keep running
/// through a move instead of being thrown back into the queue.
#[test]
fn migration_beats_evict_and_readmit_on_full_evictions() {
    let migrate = Scenario::by_name("migrate-vs-evict").unwrap();
    assert_eq!(
        migrate.admission.unwrap().preemption,
        PreemptionPolicy::Migrate,
        "the catalog scenario ships with the migration policy"
    );
    let mut evict = migrate.clone();
    evict.admission.as_mut().unwrap().preemption = PreemptionPolicy::Evict;

    let m = Simulator::new(migrate).unwrap().run();
    let e = Simulator::new(evict).unwrap().run();

    let crit_admitted = |r: &kairos_sim::SimReport| {
        r.queue.by_class.iter().find(|c| c.class == "critical").unwrap().admitted
    };
    assert!(m.totals.migrations > 0, "the migration run must actually migrate");
    assert_eq!(e.totals.migrations, 0, "the evict baseline never migrates");
    assert!(crit_admitted(&m) > 0, "blocked criticals are admitted");
    assert!(
        crit_admitted(&m) >= crit_admitted(&e),
        "migration admits no fewer criticals ({} vs {})",
        crit_admitted(&m),
        crit_admitted(&e)
    );
    assert!(
        m.totals.preemptions < e.totals.preemptions,
        "migration must need strictly fewer full evictions ({} vs {})",
        m.totals.preemptions,
        e.totals.preemptions
    );
    // Both runs keep the ledger balanced: what is still admitted at the
    // horizon is exactly admissions plus preempt-readmissions minus
    // departures and preemptions (claims = releases + live). Long-lived
    // residents may legitimately outlive the horizon.
    for (name, r) in [("migrate", &m), ("evict", &e)] {
        assert_eq!(
            r.totals.preemptions,
            r.totals.preempt_readmissions + r.totals.lost_to_preemption,
            "{name} preemption balance"
        );
        assert_eq!(r.totals.arrivals, r.totals.admissions + r.totals.rejections, "{name}");
        assert_eq!(
            r.final_state.admitted_apps as u64,
            r.totals.admissions + r.totals.preempt_readmissions
                - r.totals.departures
                - r.totals.preemptions,
            "{name} live-set balance"
        );
    }
}

#[test]
fn defrag_sweep_compacts_without_touching_accounting() {
    let mut simulator = Simulator::new(Scenario::by_name("defrag-sweep").unwrap()).unwrap();
    let report = simulator.run();
    assert!(report.totals.defrag_moves > 0, "sweeps must move something under churn");
    assert_eq!(report.totals.preemptions, 0, "compaction never evicts");
    assert_eq!(report.totals.migrations, 0, "compaction moves count separately");
    assert_eq!(report.totals.arrivals, report.totals.admissions + report.totals.rejections);
    assert_eq!(
        report.totals.departures, report.totals.admissions,
        "every admitted app still departs — migration preserves identity and departures"
    );
    assert_eq!(report.final_state.admitted_apps, 0);
    assert!(simulator.manager().platform().is_idle(), "claims balance after defrag churn");
}

/// A queued scenario with defrag exercises `Admitd::defrag` (the catalog
/// sweep runs on the direct path); byte-reproducibility must hold there
/// too, and compaction must not disturb the queue accounting balances.
#[test]
fn queued_defrag_stays_balanced_and_reproducible() {
    let mut scenario = Scenario::by_name("retry-storm").unwrap();
    scenario.name = "test-queued-defrag".to_owned();
    scenario.defrag = Some(kairos_sim::DefragSpec { period: 120, max_moves: 3 });
    let a = Simulator::new(scenario.clone()).unwrap().run();
    let b = Simulator::new(scenario).unwrap().run();
    assert_eq!(a.to_json_string(), b.to_json_string(), "queued defrag reproduces");
    let q = &a.queue;
    assert_eq!(
        q.rejected_queue_full
            + q.rejected_permanent
            + q.dropped_timeout
            + q.dropped_retries_exhausted
            + q.flushed_at_shutdown,
        a.totals.rejections
    );
    assert_eq!(q.admitted_immediate + q.admitted_after_wait, a.totals.admissions);
}

/// Preemption under scripted faults: the fault-eviction and
/// preemption-eviction books are kept separately and both balance.
#[test]
fn preemption_and_faults_keep_separate_balanced_books() {
    let mut scenario = Scenario::by_name("critical-preempt").unwrap();
    scenario.name = "test-preempt-faults".to_owned();
    scenario.readmit_evicted = true;
    scenario.faults = vec![
        kairos_sim::FaultSpec { at: 500, element: 10, repair_after: Some(200) },
        kairos_sim::FaultSpec { at: 1100, element: 28, repair_after: None },
    ];
    let report = Simulator::new(scenario).unwrap().run();
    assert_eq!(report.totals.faults_injected, 2);
    assert_eq!(
        report.totals.evictions,
        report.totals.readmissions + report.totals.lost_to_faults,
        "fault eviction balance"
    );
    assert_eq!(
        report.totals.preemptions,
        report.totals.preempt_readmissions + report.totals.lost_to_preemption,
        "preemption balance"
    );
    assert_eq!(report.totals.arrivals, report.totals.admissions + report.totals.rejections);
}
