//! Integration tests of the scenario engine: determinism, conservation
//! laws, and resource release after departures.

use kairos_appgen::{DatasetSpec, MixEntry, Orientation, SizeClass};
use kairos_sim::{FaultSpec, PhaseSpec, PlatformSpec, Scenario, Simulator};

fn light_mix() -> Vec<MixEntry> {
    vec![MixEntry::new(
        DatasetSpec { orientation: Orientation::Computation, size: SizeClass::Small },
        1,
    )]
}

/// A short scenario whose applications all depart well before the horizon.
fn churn_and_drain(seed: u64) -> Scenario {
    Scenario {
        name: "test-churn".to_owned(),
        seed,
        sample_period: 25,
        platform: PlatformSpec::Crisp,
        phases: vec![
            PhaseSpec::new("churn", 600, 20, 60, light_mix()),
            PhaseSpec::new("drain", 2000, 0, 0, Vec::new()),
        ],
        faults: Vec::new(),
        readmit_evicted: false,
        admission: None,
        defrag: None,
        cluster: None,
        gateway: None,
        telemetry: false,
        trace: false,
        cache: false,
        watch: None,
        power: None,
    }
}

#[test]
fn identical_seeds_give_byte_identical_reports() {
    for scenario in Scenario::catalog() {
        let a = Simulator::new(scenario.clone()).unwrap().run();
        let b = Simulator::new(scenario.clone()).unwrap().run();
        assert_eq!(
            a.to_json_string(),
            b.to_json_string(),
            "{} must reproduce byte-for-byte",
            scenario.name
        );
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let a = Simulator::new(churn_and_drain(1)).unwrap().run();
    let b = Simulator::new(churn_and_drain(2)).unwrap().run();
    assert_ne!(a.to_json_string(), b.to_json_string());
}

#[test]
fn departures_return_the_platform_to_baseline() {
    let mut simulator = Simulator::new(churn_and_drain(7)).unwrap();
    let report = simulator.run();
    assert!(report.totals.admissions > 0, "the scenario must admit something");
    assert_eq!(
        report.totals.departures, report.totals.admissions,
        "every admitted application departs within the drain window"
    );
    assert_eq!(report.final_state.admitted_apps, 0);
    assert_eq!(report.final_state.element_utilisation, 0.0);
    assert_eq!(report.final_state.resource_utilisation, 0.0);
    assert_eq!(report.final_state.free_islands, 1);
    assert!(
        simulator.manager().platform().is_idle(),
        "all elements and links must be reclaimed after the last departure"
    );
}

#[test]
fn arrivals_split_into_admissions_and_rejections() {
    for scenario in Scenario::catalog() {
        let report = Simulator::new(scenario.clone()).unwrap().run();
        // Every arrival reaches exactly one terminal outcome — with an
        // admission queue, the shutdown flush guarantees it.
        assert_eq!(
            report.totals.arrivals,
            report.totals.admissions + report.totals.rejections,
            "{}",
            scenario.name
        );
        let by_phase: u64 = report.rejections_by_phase.iter().map(|(_, n)| n).sum();
        if scenario.admission.is_none() {
            assert_eq!(by_phase, report.totals.rejections, "{}", scenario.name);
            assert!(!report.queue.enabled, "{}", scenario.name);
        } else {
            // Queue-level rejections (full, timeout, shutdown) carry no
            // pipeline phase; the reason breakdown must balance instead.
            assert!(by_phase <= report.totals.rejections, "{}", scenario.name);
            let q = &report.queue;
            assert!(q.enabled, "{}", scenario.name);
            assert_eq!(
                q.rejected_queue_full
                    + q.rejected_permanent
                    + q.dropped_timeout
                    + q.dropped_retries_exhausted
                    + q.flushed_at_shutdown,
                report.totals.rejections,
                "{}",
                scenario.name
            );
            assert_eq!(
                q.admitted_immediate + q.admitted_after_wait,
                report.totals.admissions,
                "{}",
                scenario.name
            );
        }
        let per_phase_arrivals: u64 = report.phases.iter().map(|p| p.arrivals).sum();
        assert_eq!(per_phase_arrivals, report.totals.arrivals, "{}", scenario.name);
        assert!(!report.samples.is_empty());
        assert_eq!(report.horizon, scenario.horizon());
    }
}

#[test]
fn faults_evict_and_repair_restores_capacity() {
    let mut scenario = churn_and_drain(3);
    scenario.name = "test-faults".to_owned();
    // Heavier, longer-lived load so the faulted elements are likely busy.
    scenario.phases[0] = PhaseSpec::new("churn", 600, 8, 400, light_mix());
    scenario.faults = vec![
        FaultSpec { at: 300, element: 5, repair_after: Some(100) },
        FaultSpec { at: 350, element: 6, repair_after: None },
    ];
    scenario.readmit_evicted = true;

    let mut simulator = Simulator::new(scenario).unwrap();
    let report = simulator.run();
    assert_eq!(report.totals.faults_injected, 2);
    assert_eq!(report.totals.repairs, 1);
    assert_eq!(report.totals.evictions, report.totals.readmissions + report.totals.lost_to_faults);
    assert_eq!(report.final_state.failed_elements, 1, "one element is never repaired");
    // Everything that stayed admitted departs during the drain phase.
    assert_eq!(report.final_state.admitted_apps, 0);
    let platform = simulator.manager().platform();
    assert!(platform.is_idle(), "no claims remain after the drain (failure marks aside)");
    assert_eq!(platform.failed_elements().len(), 1);
}

#[test]
fn readmitted_apps_still_depart_across_seeds() {
    // Regression: a departure coinciding exactly with a fault tick must be
    // rescheduled for the re-admitted instance, or it leaks until the
    // horizon. Sweep seeds so fault ticks land on many different offsets
    // relative to departure times. Lifetimes are short relative to the
    // drain window so no draw can legitimately outlive the horizon.
    for seed in 0..10 {
        let mut scenario = churn_and_drain(seed);
        scenario.name = format!("test-fault-drain-{seed}");
        scenario.phases[0] = PhaseSpec::new("churn", 600, 6, 100, light_mix());
        scenario.faults = (0..12)
            .map(|i| FaultSpec { at: 50 * (i + 1), element: i as u32, repair_after: Some(40) })
            .collect();
        scenario.readmit_evicted = true;
        let mut simulator = Simulator::new(scenario).unwrap();
        let report = simulator.run();
        assert_eq!(report.final_state.admitted_apps, 0, "seed {seed} leaked an application");
        assert!(simulator.manager().platform().is_idle(), "seed {seed} leaked claims");
    }
}

#[test]
fn queued_scenarios_with_faults_keep_accounting_balanced() {
    // Queueing + faults + eviction re-submission: the regime no catalog
    // scenario covers. Queue statistics count first-class requests only;
    // re-submissions surface under readmissions/lost_to_faults, so every
    // balance below must hold exactly.
    let mut scenario = churn_and_drain(5);
    scenario.name = "test-queued-faults".to_owned();
    scenario.phases[0] = PhaseSpec::new("churn", 600, 8, 400, light_mix());
    scenario.faults = vec![
        FaultSpec { at: 300, element: 5, repair_after: Some(100) },
        FaultSpec { at: 350, element: 6, repair_after: None },
    ];
    scenario.readmit_evicted = true;
    scenario.admission = Some(kairos_admitd::AdmitPolicy {
        class_capacity: [4, 4, 8, 4],
        max_wait: Some(300),
        max_attempts: 4,
        backoff_base: 1,
        backoff_cap: 4,
        ..kairos_admitd::AdmitPolicy::default()
    });
    let report = Simulator::new(scenario).unwrap().run();
    let q = &report.queue;
    assert_eq!(report.totals.faults_injected, 2);
    assert_eq!(report.totals.arrivals, report.totals.admissions + report.totals.rejections);
    assert_eq!(
        q.rejected_queue_full
            + q.rejected_permanent
            + q.dropped_timeout
            + q.dropped_retries_exhausted
            + q.flushed_at_shutdown,
        report.totals.rejections
    );
    assert_eq!(q.admitted_immediate + q.admitted_after_wait, report.totals.admissions);
    assert_eq!(report.totals.evictions, report.totals.readmissions + report.totals.lost_to_faults);
    let class_queued: u64 = q.by_class.iter().map(|c| c.queued).sum();
    assert_eq!(class_queued, q.queued, "per-class and top-level queued counts must agree");
    let by_phase: u64 = report.rejections_by_phase.iter().map(|(_, n)| n).sum();
    assert!(by_phase <= report.totals.rejections);
}

#[test]
#[should_panic(expected = "only be called once")]
fn rerunning_a_simulator_is_refused() {
    let mut simulator = Simulator::new(churn_and_drain(1)).unwrap();
    simulator.run();
    simulator.run();
}

#[test]
fn hotspot_catalog_scenario_exercises_the_fault_path() {
    let report = Simulator::new(Scenario::by_name("hotspot-failures").unwrap()).unwrap().run();
    assert_eq!(report.totals.faults_injected, 5);
    assert_eq!(report.totals.repairs, 5);
    assert!(report.totals.evictions > 0, "faults must evict at least one application");
    assert_eq!(report.final_state.failed_elements, 0, "all elements recover");
}
