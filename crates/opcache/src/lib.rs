//! # kairos-opcache
//!
//! A design-time *operating-point* mapping cache for the Kairos resource
//! manager, after the hybrid design-time/run-time mapping methodology:
//! once the full binding/mapping/routing pipeline has computed an
//! execution layout for an application *shape* on a given platform
//! occupancy, that operating point is remembered, and the next admission
//! of an identical shape against byte-identical occupancy replays the
//! stored point in O(claims) instead of re-running the whole pipeline.
//!
//! Two keys make this sound:
//!
//! * [`ShapeKey`] — a structural hash of the [`Application`] *excluding
//!   its name* (the pipeline never reads the name), so identical
//!   workload-sampled applications share cache entries;
//! * [`StateStamp`] — a hash of the complete mutable platform state
//!   (free vectors, resident order, link occupancy, failure marks). A
//!   cache hit therefore certifies that the platform is byte-identical
//!   to the state the point was computed on, and since the pipeline is
//!   deterministic, replaying the point reproduces *exactly* the
//!   decision the cold pipeline would have made. A warm cache changes
//!   which work runs, never what is decided.
//!
//! Stamping the full state per lookup would be `O(|E| + |L|)`, so the
//! cache memoizes the stamp against [`Platform::state_epoch`], the
//! monotone mutation counter every ledger mutation bumps. Entries are
//! additionally invalidated eagerly on fault/repair/migration events via
//! [`MappingCache::invalidate_element`] — the stamp alone already keeps
//! stale points from being *used* (a mutated platform stamps
//! differently), so eager invalidation is what keeps dead elements from
//! pinning memory and what the `kairos.opcache.invalidations` counter
//! observes.
//!
//! The cache is generic over the stored point type `P` (the manager
//! stores its own decision record, including refusals) through the
//! [`OperatingPoint`] trait, which only asks whether a point uses a
//! given element. Iteration and eviction order are deterministic:
//! entries live in a `BTreeMap` keyed by `(shape, stamp)` and evict in
//! FIFO insertion order once [`CacheConfig::max_points`] is reached.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::{BTreeMap, VecDeque};

use kairos_app::Application;
use kairos_platform::{ElementId, LinkId, Platform};

/// 128-bit FNV-1a, the workspace's dependency-free structural hash.
#[derive(Debug, Clone, Copy)]
struct Fnv(u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u128;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    #[inline]
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
}

/// Structural signature of an [`Application`]: everything the admission
/// pipeline reads — tasks, roles, implementations, channels, constraints
/// — *except* the application's name, which it never reads. Two
/// workload-sampled instances of the same shape therefore share a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeKey(u128);

/// Computes the [`ShapeKey`] of `app`.
pub fn shape_of(app: &Application) -> ShapeKey {
    let mut h = Fnv::new();
    h.u64(app.task_count() as u64);
    for t in app.tasks() {
        h.str(t.name());
        h.u64(t.role() as u64);
        h.u64(t.implementations().len() as u64);
        for imp in t.implementations() {
            h.str(imp.target().label());
            for &r in imp.requires().as_array() {
                h.u64(r);
            }
            h.u64(imp.exec_cycles());
            h.u64(imp.energy());
        }
    }
    h.u64(app.channel_count() as u64);
    for c in app.channels() {
        h.u64(c.src().0 as u64);
        h.u64(c.dst().0 as u64);
        h.u64(c.bandwidth());
        h.u64(c.tokens_per_firing() as u64);
    }
    h.u64(app.constraints().len() as u64);
    for k in app.constraints() {
        match *k {
            kairos_app::Constraint::Throughput { max_period_cycles } => {
                h.u64(0);
                h.u64(max_period_cycles);
            }
            kairos_app::Constraint::Latency { max_latency_cycles, pipeline_depth } => {
                h.u64(1);
                h.u64(max_latency_cycles);
                h.u64(pipeline_depth as u64);
            }
        }
    }
    ShapeKey(h.0)
}

/// Hash of the complete mutable platform state: per-element free vectors,
/// residents *in order*, per-link occupancy and failure marks. Equal
/// stamps certify byte-identical platform state (up to hash collision on
/// a 128-bit FNV, which the equivalence suite treats as impossible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateStamp(u128);

/// Computes the [`StateStamp`] of `platform`, hashing `O(|E| + |L|)`
/// state. Prefer [`MappingCache::stamp`], which memoizes this against
/// [`Platform::state_epoch`].
pub fn stamp_of(platform: &Platform) -> StateStamp {
    let mut h = Fnv::new();
    for e in platform.element_ids() {
        for &r in platform.free(e).as_array() {
            h.u64(r);
        }
        let residents = platform.residents(e);
        h.u64(residents.len() as u64);
        for occ in residents {
            h.u64(occ.app.0 as u64);
            h.u64(occ.task as u64);
            for &r in occ.claimed.as_array() {
                h.u64(r);
            }
        }
        h.byte(platform.is_failed(e) as u8);
    }
    for i in 0..platform.link_count() as u32 {
        let l = LinkId(i);
        h.u64(platform.link_free_bandwidth(l));
        h.u64(platform.link_free_virtual_channels(l) as u64);
    }
    StateStamp(h.0)
}

/// Configuration of a [`MappingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached operating points; the oldest entry is
    /// evicted (FIFO) when a fresh insertion would exceed this. Zero
    /// disables caching entirely while keeping the code path live.
    pub max_points: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { max_points: 1024 }
    }
}

/// Counters describing a [`MappingCache`]'s lifetime behaviour, surfaced
/// through `ResourceService::cache_stats` and the sim report's `cache`
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a point for the exact (shape, state) key.
    pub hits: u64,
    /// Lookups that found nothing and fell back to the cold pipeline.
    pub misses: u64,
    /// Entries removed by element-level invalidation (faults, repairs,
    /// migrations, rebalances).
    pub invalidations: u64,
    /// Entries stored after cold pipeline runs.
    pub insertions: u64,
    /// Entries dropped by FIFO capacity eviction.
    pub evictions: u64,
    /// Operating points currently resident.
    pub points: u64,
}

impl CacheStats {
    /// Field-wise sum, for aggregating per-shard caches into one view.
    pub fn merge(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            invalidations: self.invalidations + other.invalidations,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            points: self.points + other.points,
        }
    }
}

/// What the cache needs to know about a stored point: which platform
/// elements its layout touches, so fault-driven invalidation can drop
/// exactly the affected entries.
pub trait OperatingPoint {
    /// `true` when the point's layout places work on `element`.
    fn uses_element(&self, element: ElementId) -> bool;
}

/// The operating-point cache: a deterministic map from
/// `(ShapeKey, StateStamp)` to a stored point, with FIFO capacity
/// eviction, element-level invalidation and an epoch-memoized state
/// stamp.
#[derive(Debug, Clone)]
pub struct MappingCache<P> {
    config: CacheConfig,
    entries: BTreeMap<(ShapeKey, StateStamp), P>,
    /// Insertion order of live keys, for deterministic FIFO eviction.
    /// Invalidated keys linger here and are skipped at eviction time.
    order: VecDeque<(ShapeKey, StateStamp)>,
    /// Memoized `(state_epoch, stamp)` of the last stamped platform.
    memo: Option<(u64, StateStamp)>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    insertions: u64,
    evictions: u64,
}

impl<P: OperatingPoint + Clone> MappingCache<P> {
    /// An empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        MappingCache {
            config,
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            memo: None,
            hits: 0,
            misses: 0,
            invalidations: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of resident points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no points are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current [`StateStamp`] of `platform`, memoized against
    /// [`Platform::state_epoch`] so repeated lookups between mutations
    /// cost O(1) instead of `O(|E| + |L|)`.
    pub fn stamp(&mut self, platform: &Platform) -> StateStamp {
        let epoch = platform.state_epoch();
        if let Some((at, stamp)) = self.memo {
            if at == epoch {
                return stamp;
            }
        }
        let stamp = stamp_of(platform);
        self.memo = Some((epoch, stamp));
        stamp
    }

    /// Looks up the point stored for `(shape, stamp)`, counting the hit
    /// or miss.
    pub fn lookup(&mut self, shape: ShapeKey, stamp: StateStamp) -> Option<P> {
        match self.entries.get(&(shape, stamp)) {
            Some(point) => {
                self.hits += 1;
                Some(point.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `point` under `(shape, stamp)`, evicting the oldest entry
    /// first when the cache is full. Overwrites silently on key
    /// collision. A `max_points` of zero stores nothing.
    pub fn insert(&mut self, shape: ShapeKey, stamp: StateStamp, point: P) {
        if self.config.max_points == 0 {
            return;
        }
        let key = (shape, stamp);
        if self.entries.insert(key, point).is_none() {
            self.order.push_back(key);
            while self.entries.len() > self.config.max_points {
                // Skip order entries already removed by invalidation.
                let old = self.order.pop_front().expect("entries outnumber the order queue");
                if self.entries.remove(&old).is_some() {
                    self.evictions += 1;
                }
            }
        }
        self.insertions += 1;
    }

    /// Removes every point whose layout uses `element`, returning how
    /// many were dropped (also added to the `invalidations` counter).
    pub fn invalidate_element(&mut self, element: ElementId) -> u64 {
        let stale: Vec<(ShapeKey, StateStamp)> =
            self.entries.iter().filter(|(_, p)| p.uses_element(element)).map(|(&k, _)| k).collect();
        let dropped = stale.len() as u64;
        for key in stale {
            self.entries.remove(&key);
        }
        self.invalidations += dropped;
        dropped
    }

    /// [`Self::invalidate_element`] over a set, counting each entry once
    /// even when it uses several of the elements.
    pub fn invalidate_elements(&mut self, elements: &[ElementId]) -> u64 {
        let mut dropped = 0;
        for &e in elements {
            dropped += self.invalidate_element(e);
        }
        dropped
    }

    /// A snapshot of the cache's lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            insertions: self.insertions,
            evictions: self.evictions,
            points: self.entries.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_app::{ApplicationBuilder, Implementation, TaskRole};
    use kairos_platform::{topology, ElementKind, Occupant, ResourceVector};

    #[derive(Debug, Clone, PartialEq)]
    struct Point(Vec<ElementId>);

    impl OperatingPoint for Point {
        fn uses_element(&self, element: ElementId) -> bool {
            self.0.contains(&element)
        }
    }

    fn app(name: &str, cpu: u64) -> Application {
        let imp = Implementation::new(ElementKind::Dsp, ResourceVector::new(cpu, 8, 0, 0), 10, 2);
        let mut b = ApplicationBuilder::new(name);
        let a = b.add_task("in0", TaskRole::Input, vec![imp]);
        let c = b.add_task("out0", TaskRole::Output, vec![imp]);
        b.add_channel(a, c, 100, 1);
        b.build().unwrap()
    }

    #[test]
    fn shape_ignores_the_name_and_sees_everything_else() {
        assert_eq!(shape_of(&app("web-0", 500)), shape_of(&app("web-1", 500)));
        assert_ne!(shape_of(&app("web-0", 500)), shape_of(&app("web-0", 501)));
    }

    #[test]
    fn stamp_tracks_state_not_epoch() {
        let mut p = topology::crisp();
        let idle = stamp_of(&p);
        let e = p.element_ids().next().unwrap();
        p.claim(
            e,
            Occupant { app: kairos_platform::AppId(0), task: 0, claimed: ResourceVector::ZERO },
        )
        .unwrap();
        let occupied = stamp_of(&p);
        assert_ne!(idle, occupied, "a zero-vector occupant still changes resident order");
        p.release(e, kairos_platform::AppId(0), 0).unwrap();
        assert_eq!(stamp_of(&p), idle, "identical state bytes stamp identically");
        p.fail_element(e);
        assert_ne!(stamp_of(&p), idle, "failure marks are part of the stamp");
    }

    #[test]
    fn memoized_stamp_follows_the_epoch_across_restore() {
        let mut cache: MappingCache<Point> = MappingCache::new(CacheConfig::default());
        let mut p = topology::crisp();
        let e = p.element_ids().next().unwrap();
        let s0 = cache.stamp(&p);
        assert_eq!(cache.stamp(&p), s0, "memo answers unchanged state");

        let cp = p.checkpoint();
        p.claim(
            e,
            Occupant { app: kairos_platform::AppId(1), task: 0, claimed: ResourceVector::ZERO },
        )
        .unwrap();
        let s1 = cache.stamp(&p);
        assert_ne!(s0, s1);

        // The regression this PR fixes: restore() must advance the epoch,
        // otherwise this memoized stamp would still answer `s1` for a
        // platform that is byte-identical to the checkpoint.
        p.restore(cp);
        assert_eq!(cache.stamp(&p), s0, "restore invalidates the stamp memo");
    }

    #[test]
    fn lookup_hit_miss_and_fifo_eviction() {
        let mut cache: MappingCache<Point> = MappingCache::new(CacheConfig { max_points: 2 });
        let shape = shape_of(&app("a", 100));
        let stamps: Vec<StateStamp> = (0..3).map(|i| StateStamp(i as u128)).collect();
        assert!(cache.lookup(shape, stamps[0]).is_none());
        cache.insert(shape, stamps[0], Point(vec![ElementId(0)]));
        cache.insert(shape, stamps[1], Point(vec![ElementId(1)]));
        assert_eq!(cache.lookup(shape, stamps[0]), Some(Point(vec![ElementId(0)])));
        cache.insert(shape, stamps[2], Point(vec![ElementId(2)]));
        assert!(cache.lookup(shape, stamps[0]).is_none(), "oldest entry evicted first");
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!((stats.insertions, stats.evictions, stats.points), (3, 1, 2));
    }

    #[test]
    fn invalidation_drops_exactly_the_overlapping_points() {
        let mut cache: MappingCache<Point> = MappingCache::new(CacheConfig::default());
        let shape = shape_of(&app("a", 100));
        cache.insert(shape, StateStamp(0), Point(vec![ElementId(0), ElementId(1)]));
        cache.insert(shape, StateStamp(1), Point(vec![ElementId(2)]));
        assert_eq!(cache.invalidate_element(ElementId(1)), 1);
        assert_eq!(cache.invalidate_element(ElementId(1)), 0, "already gone");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidate_elements(&[ElementId(2), ElementId(3)]), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 2);
        // Eviction after invalidation skips the stale order entries.
        cache.insert(shape, StateStamp(2), Point(vec![ElementId(4)]));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache: MappingCache<Point> = MappingCache::new(CacheConfig { max_points: 0 });
        let shape = shape_of(&app("a", 100));
        cache.insert(shape, StateStamp(0), Point(vec![]));
        assert!(cache.is_empty());
        assert!(cache.lookup(shape, StateStamp(0)).is_none());
    }
}
