//! The flight recorder: a bounded ring buffer of recent trace events.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

use tracing::Level;

/// One recorded trace event: a span boundary or a point event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Recorder-local sequence number, gapless within one dump unless the
    /// ring wrapped (older events were overwritten).
    pub seq: u64,
    /// The event's severity.
    pub level: Level,
    /// The emitting subsystem (`kairos_core`, `kairos_admitd`, ...).
    pub target: String,
    /// The formatted message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<4} {:5} {}: {}", self.seq, self.level, self.target, self.message)
    }
}

/// A bounded in-memory ring of the most recent [`TraceEvent`]s — cheap
/// enough to leave always-on, dumped after the fact when something went
/// wrong (an admission failure, a rollback, an aborted rebalance sweep).
///
/// Each recorder belongs to one shard (or the monolithic manager), and a
/// shard's operations run on one thread at a time, so the recorded order
/// is the deterministic operation order; the mutex only guards the
/// example-facing case of dumping while another thread records.
#[derive(Debug)]
pub struct FlightRecorder {
    label: String,
    capacity: usize,
    ring: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    next_seq: u64,
    events: VecDeque<TraceEvent>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (at least one slot is
    /// always kept).
    pub fn new(label: &str, capacity: usize) -> Self {
        FlightRecorder {
            label: label.to_owned(),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// The recorder's label (`main`, `shard0`, ...).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one event, evicting the oldest once full.
    pub fn record(&self, level: Level, target: &str, message: String) {
        let mut ring = self.ring.lock().expect("flight recorder lock");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(TraceEvent { seq, level, target: target.to_owned(), message });
    }

    /// The retained events, oldest first. The ring keeps recording; a
    /// dump is a copy, not a drain.
    pub fn dump(&self) -> Vec<TraceEvent> {
        self.ring.lock().expect("flight recorder lock").events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder lock").events.len()
    }

    /// Whether nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained events, keeping the sequence numbering.
    pub fn clear(&self) {
        self.ring.lock().expect("flight recorder lock").events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_keeps_the_most_recent_events() {
        let recorder = FlightRecorder::new("main", 3);
        for i in 0..5 {
            recorder.record(Level::INFO, "test", format!("event {i}"));
        }
        let dump = recorder.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].seq, 2, "oldest surviving event");
        assert_eq!(dump[2].message, "event 4");
        assert_eq!(recorder.capacity(), 3);
    }

    #[test]
    fn clear_keeps_sequencing() {
        let recorder = FlightRecorder::new("shard0", 8);
        recorder.record(Level::WARN, "test", "before".into());
        recorder.clear();
        assert!(recorder.is_empty());
        recorder.record(Level::WARN, "test", "after".into());
        assert_eq!(recorder.dump()[0].seq, 1, "sequence numbers keep counting across clears");
    }

    #[test]
    fn events_render_readably() {
        let recorder = FlightRecorder::new("main", 2);
        recorder.record(Level::ERROR, "kairos_core", "rollback of txn 7".into());
        let line = recorder.dump()[0].to_string();
        assert!(line.contains("ERROR"));
        assert!(line.contains("kairos_core: rollback of txn 7"));
    }
}
