//! Request-scoped causal tracing: deterministic virtual-time span trees
//! assembled per service request, a critical-path analyzer over the
//! finished trees, and a hand-rolled Chrome-trace-event exporter.
//!
//! A [`TraceContext`] is minted once per traced request at the outermost
//! service boundary and then propagated *by value* through queue
//! residency, probe fan-out, pipeline phases and preemption detours.
//! Every layer records complete child spans against the context it was
//! handed; nothing is inferred from thread identity or wall time, so the
//! assembled trees are a pure function of the operation sequence.
//!
//! Determinism rules (the trace analogue of the metric rules in
//! `lib.rs`):
//!
//! 1. Span and trace ids come from one global sequence behind the sink's
//!    mutex, and every sink access happens on the coordinating thread —
//!    the cluster's parallel probe threads never touch the sink (probe
//!    spans are synthesized by the coordinator after the join, in
//!    shard-id order).
//! 2. All span times are virtual ticks carried in by the caller; the
//!    wall clock is never consulted.
//! 3. [`Telemetry::trace_dump`](crate::Telemetry::trace_dump) orders
//!    spans by `(trace, id)` and the exporter renders nothing else, so
//!    identical runs export byte-identical timelines.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// The identity a traced request carries through the stack: its trace id
/// plus the span acting as the current parent. Copied by value into
/// requests, queue entries and pipeline calls; [`TraceContext::NONE`]
/// (also the [`Default`]) disables recording wherever it is handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace (request) this context belongs to.
    pub trace: u64,
    /// The span new children attach under.
    pub span: u64,
}

impl TraceContext {
    /// The absent context: every trace operation handed it is a no-op.
    pub const NONE: TraceContext = TraceContext { trace: u64::MAX, span: u64::MAX };

    /// Whether this is the absent context.
    pub fn is_none(&self) -> bool {
        self.trace == u64::MAX
    }

    /// Whether this context names a live trace.
    pub fn is_some(&self) -> bool {
        !self.is_none()
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::NONE
    }
}

/// Sentinel parent id of a root span.
pub const ROOT_PARENT: u64 = u64::MAX;

/// One finished span of a request trace. Times are virtual ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: u64,
    /// The span's id (globally unique, minted in recording order).
    pub id: u64,
    /// The parent span's id ([`ROOT_PARENT`] for a trace root).
    pub parent: u64,
    /// The span's name (`request`, `queue`, `probe.shard1`,
    /// `phase.mapping`, `preempt.evict`, ...).
    pub name: String,
    /// Virtual start tick.
    pub start: u64,
    /// Virtual end tick (`>= start`).
    pub end: u64,
    /// Key/value annotations, in recording order.
    pub args: Vec<(String, String)>,
}

impl SpanRecord {
    /// The span's duration in virtual ticks.
    pub fn ticks(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// The value recorded under `key`, when present (last write wins).
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

#[derive(Debug, Default)]
struct SinkState {
    next_trace: u64,
    next_span: u64,
    spans: Vec<SpanRecord>,
    /// Open (root) span id → index into `spans`.
    open: BTreeMap<u64, usize>,
}

/// The per-hub store finished spans accumulate in. One sink is shared by
/// a hub and all its [`child`](crate::Telemetry::child) handles, so a
/// clustered stack assembles every shard's spans into one set of trees.
#[derive(Debug, Default)]
pub(crate) struct TraceSink {
    state: Mutex<SinkState>,
}

impl TraceSink {
    /// Opens a new root span (a fresh trace) at tick `at`.
    pub(crate) fn open_root(&self, name: &str, at: u64, args: &[(&str, String)]) -> TraceContext {
        let mut state = self.state.lock().expect("trace sink lock");
        let trace = state.next_trace;
        state.next_trace += 1;
        let id = state.next_span;
        state.next_span += 1;
        let index = state.spans.len();
        state.spans.push(SpanRecord {
            trace,
            id,
            parent: ROOT_PARENT,
            name: name.to_owned(),
            start: at,
            end: at,
            args: args.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
        });
        state.open.insert(id, index);
        TraceContext { trace, span: id }
    }

    /// Records one complete child span under `ctx`.
    pub(crate) fn record_child(
        &self,
        ctx: TraceContext,
        name: &str,
        start: u64,
        end: u64,
        args: &[(&str, String)],
    ) {
        if ctx.is_none() {
            return;
        }
        let mut state = self.state.lock().expect("trace sink lock");
        let id = state.next_span;
        state.next_span += 1;
        state.spans.push(SpanRecord {
            trace: ctx.trace,
            id,
            parent: ctx.span,
            name: name.to_owned(),
            start,
            end: end.max(start),
            args: args.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
        });
    }

    /// Closes the root span of `ctx` at tick `at`, appending `args`.
    /// Closing an unknown or already-closed root is a no-op.
    pub(crate) fn close_root(&self, ctx: TraceContext, at: u64, args: &[(&str, String)]) {
        if ctx.is_none() {
            return;
        }
        let mut state = self.state.lock().expect("trace sink lock");
        let Some(index) = state.open.remove(&ctx.span) else { return };
        let span = &mut state.spans[index];
        span.end = at.max(span.start);
        span.args.extend(args.iter().map(|(k, v)| ((*k).to_owned(), v.clone())));
    }

    /// Every recorded span, ordered by `(trace, id)`.
    pub(crate) fn dump(&self) -> Vec<SpanRecord> {
        let state = self.state.lock().expect("trace sink lock");
        let mut spans = state.spans.clone();
        spans.sort_by_key(|s| (s.trace, s.id));
        spans
    }
}

/// The per-trace digest [`summarize`] computes: end-to-end latency and
/// the segment that dominated it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// The trace id.
    pub trace: u64,
    /// The root span's `class` annotation (empty when absent).
    pub class: String,
    /// The root span's `origin` annotation (empty when absent).
    pub origin: String,
    /// The root span's `outcome` annotation (empty when it never closed).
    pub outcome: String,
    /// Virtual start tick of the root.
    pub start: u64,
    /// Virtual end tick of the root.
    pub end: u64,
    /// End-to-end latency in virtual ticks.
    pub latency: u64,
    /// The dominating segment (see [`summarize`] for the precedence).
    pub critical: String,
    /// Ticks attributed to the critical segment (queue wait; `0` for the
    /// structural segments, whose virtual duration is zero by design).
    pub critical_ticks: u64,
}

/// Folds a `(trace, id)`-ordered span set into one [`TraceSummary`] per
/// trace, in trace-id order.
///
/// The critical segment is chosen by a deterministic precedence: under
/// the virtual clock only queue residency accumulates ticks, so any
/// nonzero **queue** wait dominates outright; otherwise the latency is
/// zero and the dominant segment is structural — a **preempt** detour if
/// one ran, a losing **probe** if the fan-out rejected somewhere, else
/// the *deciding* pipeline phase (the last `phase.*` span: the rejecting
/// phase of a failure, the final phase of a success), else plain
/// **dispatch**.
pub fn summarize(spans: &[SpanRecord]) -> Vec<TraceSummary> {
    let mut summaries = Vec::new();
    let mut index = 0;
    while index < spans.len() {
        let trace = spans[index].trace;
        let mut end = index;
        while end < spans.len() && spans[end].trace == trace {
            end += 1;
        }
        let group = &spans[index..end];
        index = end;
        let Some(root) = group.iter().find(|s| s.parent == ROOT_PARENT) else { continue };
        let queue_ticks: u64 = group
            .iter()
            .filter(|s| s.name == "queue")
            .map(SpanRecord::ticks)
            .fold(0, u64::saturating_add);
        let preempted = group.iter().any(|s| s.name.starts_with("preempt."));
        let losing_probe =
            group.iter().any(|s| s.name.starts_with("probe.") && s.arg("fit") == Some("no"));
        let deciding_phase = group.iter().rev().find(|s| s.name.starts_with("phase."));
        let (critical, critical_ticks) = if queue_ticks > 0 {
            ("queue".to_owned(), queue_ticks)
        } else if preempted {
            ("preempt".to_owned(), 0)
        } else if losing_probe {
            ("probe".to_owned(), 0)
        } else if let Some(phase) = deciding_phase {
            (phase.name.clone(), 0)
        } else {
            ("dispatch".to_owned(), 0)
        };
        summaries.push(TraceSummary {
            trace,
            class: root.arg("class").unwrap_or("").to_owned(),
            origin: root.arg("origin").unwrap_or("").to_owned(),
            outcome: root.arg("outcome").unwrap_or("").to_owned(),
            start: root.start,
            end: root.end,
            latency: root.ticks(),
            critical,
            critical_ticks,
        });
    }
    summaries
}

/// Renders a `(trace, id)`-ordered span set in the Chrome trace event
/// format (a JSON array of complete `"ph": "X"` events), viewable in
/// Perfetto or `chrome://tracing`.
///
/// Virtual ticks map to microseconds (`ts`/`dur`), each trace renders as
/// its own thread (`tid` = trace id, `pid` = 1) so the viewer stacks
/// concurrent requests as parallel tracks, and every root event carries
/// the computed `critical_path` of its trace. The output is a pure
/// function of the span set: byte-identical runs export byte-identical
/// timelines.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let critical: BTreeMap<u64, String> =
        summarize(spans).into_iter().map(|s| (s.trace, s.critical)).collect();
    let mut out = String::from("[\n");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  {\"name\": ");
        write_json_str(&mut out, &span.name);
        let _ = write!(
            out,
            ", \"cat\": \"kairos\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}",
            span.start,
            span.ticks(),
            span.trace
        );
        out.push_str(", \"args\": {");
        let _ = write!(out, "\"span\": {}", span.id);
        if span.parent != ROOT_PARENT {
            let _ = write!(out, ", \"parent\": {}", span.parent);
        }
        for (key, value) in &span.args {
            out.push_str(", ");
            write_json_str(&mut out, key);
            out.push_str(": ");
            write_json_str(&mut out, value);
        }
        if span.parent == ROOT_PARENT {
            if let Some(path) = critical.get(&span.trace) {
                out.push_str(", \"critical_path\": ");
                write_json_str(&mut out, path);
            }
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Minimal JSON string escaping for the exporter (names and annotation
/// values are ASCII in practice; control characters escape anyway for
/// safety).
fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_with_one_trace() -> TraceSink {
        let sink = TraceSink::default();
        let ctx = sink.open_root(
            "request",
            10,
            &[("class", "critical".into()), ("origin", "request".into())],
        );
        sink.record_child(ctx, "probe.shard0", 10, 10, &[("fit", "no".into())]);
        sink.record_child(ctx, "probe.shard1", 10, 10, &[("fit", "yes".into())]);
        sink.record_child(ctx, "queue", 10, 14, &[]);
        sink.record_child(ctx, "phase.binding", 14, 14, &[("outcome", "ok".into())]);
        sink.close_root(ctx, 14, &[("outcome", "admitted".into())]);
        sink
    }

    #[test]
    fn contexts_default_to_none() {
        assert!(TraceContext::NONE.is_none());
        assert!(TraceContext::default().is_none());
        assert!(TraceContext { trace: 0, span: 0 }.is_some());
    }

    #[test]
    fn sink_assembles_a_span_tree_in_recording_order() {
        let sink = sink_with_one_trace();
        let spans = sink.dump();
        assert_eq!(spans.len(), 5);
        let root = &spans[0];
        assert_eq!((root.parent, root.start, root.end), (ROOT_PARENT, 10, 14));
        assert_eq!(root.arg("outcome"), Some("admitted"));
        assert!(spans[1..].iter().all(|s| s.parent == root.id && s.trace == root.trace));
        let names: Vec<_> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["request", "probe.shard0", "probe.shard1", "queue", "phase.binding"]
        );
    }

    #[test]
    fn none_contexts_record_nothing_and_double_close_is_safe() {
        let sink = TraceSink::default();
        sink.record_child(TraceContext::NONE, "queue", 0, 1, &[]);
        sink.close_root(TraceContext::NONE, 1, &[]);
        assert!(sink.dump().is_empty());
        let ctx = sink.open_root("request", 0, &[]);
        sink.close_root(ctx, 3, &[("outcome", "admitted".into())]);
        sink.close_root(ctx, 9, &[("outcome", "again".into())]);
        let spans = sink.dump();
        assert_eq!(spans[0].end, 3, "a second close must not reopen the root");
        assert_eq!(spans[0].arg("outcome"), Some("admitted"));
    }

    #[test]
    fn queue_wait_dominates_the_critical_path() {
        let spans = sink_with_one_trace().dump();
        let summaries = summarize(&spans);
        assert_eq!(summaries.len(), 1);
        let s = &summaries[0];
        assert_eq!((s.latency, s.critical.as_str(), s.critical_ticks), (4, "queue", 4));
        assert_eq!(
            (s.class.as_str(), s.origin.as_str(), s.outcome.as_str()),
            ("critical", "request", "admitted")
        );
    }

    #[test]
    fn structural_segments_break_zero_latency_ties_in_precedence_order() {
        let sink = TraceSink::default();
        // Losing probe beats the deciding phase...
        let a = sink.open_root("request", 5, &[]);
        sink.record_child(a, "probe.shard0", 5, 5, &[("fit", "no".into())]);
        sink.record_child(a, "phase.binding", 5, 5, &[]);
        sink.close_root(a, 5, &[]);
        // ...a preemption detour beats both...
        let b = sink.open_root("request", 6, &[]);
        sink.record_child(b, "probe.shard0", 6, 6, &[("fit", "no".into())]);
        sink.record_child(b, "preempt.evict", 6, 6, &[]);
        sink.close_root(b, 6, &[]);
        // ...the deciding phase is the *last* phase span...
        let c = sink.open_root("request", 7, &[]);
        sink.record_child(c, "phase.binding", 7, 7, &[]);
        sink.record_child(c, "phase.mapping", 7, 7, &[]);
        sink.close_root(c, 7, &[]);
        // ...and a bare root falls back to dispatch.
        let d = sink.open_root("request", 8, &[]);
        sink.close_root(d, 8, &[]);
        let criticals: Vec<String> =
            summarize(&sink.dump()).into_iter().map(|s| s.critical).collect();
        assert_eq!(criticals, vec!["probe", "preempt", "phase.mapping", "dispatch"]);
    }

    #[test]
    fn chrome_export_is_valid_shaped_and_deterministic() {
        let sink = sink_with_one_trace();
        let rendered = chrome_trace(&sink.dump());
        assert!(rendered.starts_with("[\n"));
        assert!(rendered.ends_with("\n]\n"));
        assert!(rendered.contains("\"ph\": \"X\""));
        assert!(rendered.contains("\"name\": \"probe.shard1\""));
        assert!(rendered.contains("\"critical_path\": \"queue\""));
        assert!(rendered.contains("\"dur\": 4"));
        assert_eq!(rendered, chrome_trace(&sink.dump()), "export must be deterministic");
        assert_eq!(chrome_trace(&[]), "[\n\n]\n");
    }

    #[test]
    fn exporter_escapes_awkward_strings() {
        let mut out = String::new();
        write_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
