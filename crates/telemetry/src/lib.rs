//! # kairos-telemetry
//!
//! The unified observability layer of the Kairos workspace: structured
//! tracing, an atomic metrics registry and a bounded flight recorder
//! behind one cheap-clone [`Telemetry`] handle.
//!
//! The paper's evaluation measures the run-time cost of every allocation
//! phase; before this crate that signal existed only as diagnostic-only
//! `PhaseTimings`, with each subsystem hand-rolling its own tallies. Now
//! every layer — the core pipeline, the admission front-end, the
//! relocation planners, the service surface, the cluster fan-out and the
//! sim engine — records through the same three instruments:
//!
//! * **Metrics** — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s in a [`Registry`], recorded with single relaxed
//!   atomics on the hot path and frozen into a name-ordered [`Snapshot`]
//!   that renders as a Prometheus text exposition
//!   ([`Snapshot::render_text`]) or embeds as byte-stable JSON in the sim
//!   report.
//! * **Tracing** — spans ([`Telemetry::span`]) and typed events
//!   ([`Telemetry::event`]) over the minimal `tracing`-compatible facade
//!   under `shims/tracing`; [`Telemetry::dispatch`] bridges the upstream
//!   macro surface (`tracing::info!`, `tracing::info_span!`) into the
//!   same hub.
//! * **Flight recorder** — a bounded ring of recent [`TraceEvent`]s per
//!   shard ([`FlightRecorder`]), cheap enough to leave always-on and
//!   dumped post-mortem on admission failures, rollbacks or aborted
//!   rebalance sweeps.
//! * **Request traces** — with [`TelemetryConfig::tracing`] on, a
//!   [`TraceContext`] minted per service request
//!   ([`Telemetry::trace_root`]) propagates by value through queue
//!   residency, probe fan-out, pipeline phases and preemption detours;
//!   the hub assembles the recorded [`SpanRecord`]s into deterministic
//!   virtual-time span trees, digests them with the critical-path
//!   analyzer ([`summarize`]) and exports Chrome-trace-event timelines
//!   ([`chrome_trace`], [`Telemetry::chrome_trace`]).
//!
//! ## Determinism rules
//!
//! Telemetry must never perturb what it observes:
//!
//! 1. A disabled handle ([`Telemetry::disabled`]) is a `None`; every
//!    operation behind it is one pointer test. No instrumented code path
//!    branches on a recorded value, so enabled-vs-disabled runs make
//!    identical decisions (the observer-effect property test pins the
//!    resulting reports byte-identical).
//! 2. In the default deterministic mode
//!    ([`TelemetryConfig::wall_clock`] `= false`, the analogue of the
//!    zero `PhaseClock`) every recorded duration is `0`, so duration
//!    histograms — counts, sums, min/max — are a pure function of the
//!    operation sequence.
//! 3. Snapshots iterate the registry in name order and hold only
//!    integers; rendering is byte-stable for identical runs even under
//!    the cluster's probe parallelism, because shared counters only ever
//!    receive commutative atomic increments.
//! 4. Request traces carry only virtual ticks handed in by the caller,
//!    ids come from one sequence behind the sink's mutex, and every sink
//!    access happens on the coordinating thread — the cluster's probe
//!    threads never record spans (the coordinator synthesizes per-shard
//!    probe spans after the join, in shard-id order). Dumps sort by
//!    `(trace, id)`, so trace exports are byte-stable too.
//!
//! See `docs/OBSERVABILITY.md` for the span taxonomy and the metric-name
//! catalogue.
//!
//! ## Example
//!
//! ```
//! use kairos_telemetry::{Telemetry, TelemetryConfig};
//! use tracing::Level;
//!
//! let telemetry = Telemetry::new(TelemetryConfig::default());
//! let admissions = telemetry.counter("kairos.example.admissions").unwrap();
//! let latency = telemetry.histogram("kairos.example.ns", &[1_000, 1_000_000]).unwrap();
//!
//! let span = telemetry.span("example", "admit");
//! admissions.inc();
//! latency.record(Telemetry::elapsed_ns(telemetry.clock())); // 0 when deterministic
//! drop(span);
//! telemetry.event(Level::INFO, "example", "admitted app 0".into());
//!
//! assert!(telemetry.render_text().contains("kairos_example_admissions 1"));
//! assert_eq!(telemetry.flight_dump().len(), 3); // enter, exit, event
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod flight;
mod hub;
mod metric;
mod registry;
mod trace;

pub use flight::{FlightRecorder, TraceEvent};
pub use hub::{SpanGuard, Telemetry, TelemetryConfig};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricSnapshot, MetricValue, Registry, Snapshot};
pub use trace::{chrome_trace, summarize, SpanRecord, TraceContext, TraceSummary, ROOT_PARENT};

// Re-export the facade level type so instrumented crates can emit events
// without a direct `tracing` dependency.
pub use tracing::Level;
