//! The [`Telemetry`] handle every instrumented layer holds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tracing::Level;

use crate::flight::{FlightRecorder, TraceEvent};
use crate::metric::{Counter, Gauge, Histogram};
use crate::registry::{Registry, Snapshot};
use crate::trace::{SpanRecord, TraceContext, TraceSink};

/// Construction knobs for a [`Telemetry`] hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether span durations are measured on the wall clock. `false`
    /// (the default) is the deterministic mode: every recorded duration
    /// is zero, so snapshots are a pure function of the operation
    /// sequence — the telemetry analogue of the zero `PhaseClock`.
    pub wall_clock: bool,
    /// Events each flight recorder retains before overwriting the oldest.
    pub flight_capacity: usize,
    /// Whether request-scoped causal tracing is on: roots are minted per
    /// service request and every layer records spans into the hub's
    /// shared trace sink. Off by default; tracing is strictly additive
    /// and never perturbs the simulation (the observer-effect tests pin
    /// this).
    pub tracing: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { wall_clock: false, flight_capacity: 256, tracing: false }
    }
}

#[derive(Debug)]
pub(crate) struct Inner {
    config: TelemetryConfig,
    registry: Arc<Registry>,
    recorder: FlightRecorder,
    tracer: Option<Arc<TraceSink>>,
}

/// The one observability handle the whole stack shares: a metrics
/// [`Registry`], a [`FlightRecorder`] and the determinism configuration,
/// behind a cheap-clone `Arc`.
///
/// A disabled handle ([`Telemetry::disabled`], also the [`Default`]) is a
/// `None` and makes every operation a no-op branch, so instrumented hot
/// paths cost one pointer test when observability is off — the observer
/// effect the test-suite pins to zero.
///
/// [`Telemetry::child`] derives per-shard handles that share the registry
/// (metric totals aggregate across shards; atomic increments commute, so
/// totals stay deterministic under the cluster's probe parallelism) while
/// owning their own flight recorder (each shard's event order is its own
/// deterministic operation order).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op handle: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled hub labelled `main`.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                config,
                registry: Arc::new(Registry::new()),
                recorder: FlightRecorder::new("main", config.flight_capacity),
                tracer: config.tracing.then(|| Arc::new(TraceSink::default())),
            })),
        }
    }

    /// A handle sharing this hub's registry, trace sink and configuration
    /// but owning its own flight recorder labelled `label`. Disabled
    /// handles derive disabled children.
    pub fn child(&self, label: &str) -> Telemetry {
        match &self.inner {
            None => Telemetry::disabled(),
            Some(inner) => Telemetry {
                inner: Some(Arc::new(Inner {
                    config: inner.config,
                    registry: inner.registry.clone(),
                    recorder: FlightRecorder::new(label, inner.config.flight_capacity),
                    tracer: inner.tracer.clone(),
                })),
            },
        }
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether span durations are measured on the wall clock (`false`
    /// when disabled).
    pub fn wall_clock(&self) -> bool {
        self.inner.as_ref().is_some_and(|inner| inner.config.wall_clock)
    }

    /// The shared registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_ref().map(|inner| inner.registry.as_ref())
    }

    /// The counter registered under `name`, when enabled.
    pub fn counter(&self, name: &str) -> Option<Arc<Counter>> {
        self.registry().map(|r| r.counter(name))
    }

    /// The gauge registered under `name`, when enabled.
    pub fn gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        self.registry().map(|r| r.gauge(name))
    }

    /// The histogram registered under `name`, when enabled.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Option<Arc<Histogram>> {
        self.registry().map(|r| r.histogram(name, bounds))
    }

    /// Starts a duration measurement: `Some(now)` only when enabled *and*
    /// in wall-clock mode. Feed the result to [`Telemetry::elapsed_ns`].
    #[inline]
    pub fn clock(&self) -> Option<Instant> {
        if self.wall_clock() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// The nanoseconds since [`Telemetry::clock`] — `0` in deterministic
    /// mode, keeping recorded durations byte-stable.
    #[inline]
    pub fn elapsed_ns(start: Option<Instant>) -> u64 {
        start.map_or(0, |s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Records one point event into this handle's flight recorder.
    ///
    /// Guard the `format!` at the call site with [`Telemetry::enabled`]
    /// so disabled runs never build the message.
    pub fn event(&self, level: Level, target: &str, message: String) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(level, target, message);
        }
    }

    /// Opens a span: records its entry event now and its exit event when
    /// the returned guard drops. Spans of a disabled handle are free.
    pub fn span(&self, target: &'static str, name: &'static str) -> SpanGuard {
        if let Some(inner) = &self.inner {
            inner.recorder.record(Level::DEBUG, target, format!("enter {name}"));
        }
        SpanGuard { inner: self.inner.clone(), target, name }
    }

    /// This handle's flight recorder, when enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.inner.as_ref().map(|inner| &inner.recorder)
    }

    /// The retained flight-recorder events, oldest first (empty when
    /// disabled).
    pub fn flight_dump(&self) -> Vec<TraceEvent> {
        self.flight().map(FlightRecorder::dump).unwrap_or_default()
    }

    /// A point-in-time copy of every registered metric (empty when
    /// disabled).
    pub fn snapshot(&self) -> Snapshot {
        self.registry().map(Registry::snapshot).unwrap_or_default()
    }

    /// The current metrics in the Prometheus text exposition format
    /// (empty when disabled).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    fn tracer(&self) -> Option<&TraceSink> {
        self.inner.as_ref().and_then(|inner| inner.tracer.as_deref())
    }

    /// Whether request-scoped causal tracing is on for this hub.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.inner.as_ref().is_some_and(|inner| inner.tracer.is_some())
    }

    /// Mints a new trace: opens a root span `name` at virtual tick `at`
    /// and returns the context children record under. Returns
    /// [`TraceContext::NONE`] when tracing is off, so downstream layers
    /// can propagate the result unconditionally.
    pub fn trace_root(&self, name: &str, at: u64, args: &[(&str, String)]) -> TraceContext {
        match self.tracer() {
            Some(sink) => sink.open_root(name, at, args),
            None => TraceContext::NONE,
        }
    }

    /// Records one complete child span under `ctx` spanning virtual ticks
    /// `[start, end]`. A no-op when tracing is off or `ctx` is the absent
    /// context.
    pub fn trace_child(
        &self,
        ctx: TraceContext,
        name: &str,
        start: u64,
        end: u64,
        args: &[(&str, String)],
    ) {
        if let Some(sink) = self.tracer() {
            sink.record_child(ctx, name, start, end, args);
        }
    }

    /// Closes the root span of `ctx` at virtual tick `at`, appending
    /// `args` (conventionally the terminal `outcome`). A no-op when
    /// tracing is off or `ctx` is absent.
    pub fn trace_close(&self, ctx: TraceContext, at: u64, args: &[(&str, String)]) {
        if let Some(sink) = self.tracer() {
            sink.close_root(ctx, at, args);
        }
    }

    /// Every recorded span, ordered by `(trace, id)` (empty when tracing
    /// is off).
    pub fn trace_dump(&self) -> Vec<SpanRecord> {
        self.tracer().map(TraceSink::dump).unwrap_or_default()
    }

    /// The recorded traces rendered in the Chrome trace event format
    /// (an empty array when tracing is off).
    pub fn chrome_trace(&self) -> String {
        crate::trace::chrome_trace(&self.trace_dump())
    }

    /// A [`tracing::Dispatch`] feeding this hub: spans and events emitted
    /// through the `tracing` macros land in this handle's flight recorder
    /// and count under the `kairos.tracing.events` / `.spans` metrics.
    /// Install it with `tracing::dispatcher::with_default` (scoped) or
    /// `set_global_default`. Disabled handles yield a discarding
    /// dispatch.
    pub fn dispatch(&self) -> tracing::Dispatch {
        match &self.inner {
            None => tracing::Dispatch::none(),
            Some(inner) => tracing::Dispatch::new(TelemetrySubscriber {
                inner: inner.clone(),
                events: inner.registry.counter("kairos.tracing.events"),
                spans: inner.registry.counter("kairos.tracing.spans"),
                open_spans: inner.registry.gauge("kairos.tracing.open_spans"),
                next_id: AtomicU64::new(0),
                names: Mutex::new(BTreeMap::new()),
            }),
        }
    }
}

/// An open [`Telemetry::span`]; records the matching exit event on drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    target: &'static str,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(Level::DEBUG, self.target, format!("exit {}", self.name));
        }
    }
}

/// The bridge from the `tracing` macro surface into a [`Telemetry`] hub.
///
/// The `names` map holds one refcounted entry per *live* span handle:
/// `new_span` inserts at refcount one, `clone_span` increments, and
/// `try_close` decrements and evicts the entry when the last handle
/// drops — so long runs never grow the map without bound. The
/// `kairos.tracing.open_spans` gauge tracks the live entry count.
struct TelemetrySubscriber {
    inner: Arc<Inner>,
    events: Arc<Counter>,
    spans: Arc<Counter>,
    open_spans: Arc<Gauge>,
    next_id: AtomicU64,
    names: Mutex<BTreeMap<u64, (String, u64)>>,
}

impl tracing::Subscriber for TelemetrySubscriber {
    fn enabled(&self, _metadata: &tracing::Metadata<'_>) -> bool {
        true
    }

    fn new_span(&self, metadata: &tracing::Metadata<'_>) -> tracing::span::Id {
        self.spans.inc();
        self.open_spans.add(1);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.names.lock().expect("span names lock").insert(id, (metadata.name().to_owned(), 1));
        tracing::span::Id::from_u64(id)
    }

    fn event(&self, event: &tracing::Event<'_>) {
        self.events.inc();
        let metadata = event.metadata();
        self.inner.recorder.record(
            *metadata.level(),
            metadata.target(),
            event.message().to_string(),
        );
    }

    fn enter(&self, span: &tracing::span::Id) {
        let names = self.names.lock().expect("span names lock");
        if let Some((name, _)) = names.get(&span.into_u64()) {
            self.inner.recorder.record(Level::DEBUG, "tracing", format!("enter {name}"));
        }
    }

    fn exit(&self, span: &tracing::span::Id) {
        let names = self.names.lock().expect("span names lock");
        if let Some((name, _)) = names.get(&span.into_u64()) {
            self.inner.recorder.record(Level::DEBUG, "tracing", format!("exit {name}"));
        }
    }

    fn clone_span(&self, span: &tracing::span::Id) -> tracing::span::Id {
        let mut names = self.names.lock().expect("span names lock");
        if let Some((_, refs)) = names.get_mut(&span.into_u64()) {
            *refs += 1;
        }
        span.clone()
    }

    fn try_close(&self, span: tracing::span::Id) -> bool {
        let mut names = self.names.lock().expect("span names lock");
        let id = span.into_u64();
        let Some((_, refs)) = names.get_mut(&id) else { return false };
        *refs -= 1;
        if *refs > 0 {
            return false;
        }
        names.remove(&id);
        self.open_spans.add(-1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_do_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        assert!(!t.wall_clock());
        assert!(t.counter("x").is_none());
        assert!(t.clock().is_none());
        assert_eq!(Telemetry::elapsed_ns(None), 0);
        t.event(Level::ERROR, "test", "ignored".into());
        drop(t.span("test", "noop"));
        assert!(t.snapshot().is_empty());
        assert!(t.flight_dump().is_empty());
        assert_eq!(t.render_text(), "");
    }

    #[test]
    fn spans_bracket_their_scope_in_the_recorder() {
        let t = Telemetry::new(TelemetryConfig::default());
        {
            let _span = t.span("kairos_core", "admit");
            t.event(Level::INFO, "kairos_core", "inside".into());
        }
        let dump = t.flight_dump();
        let messages: Vec<_> = dump.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(messages, vec!["enter admit", "inside", "exit admit"]);
    }

    #[test]
    fn children_share_the_registry_but_not_the_recorder() {
        let t = Telemetry::new(TelemetryConfig::default());
        let shard = t.child("shard0");
        shard.counter("hits").unwrap().inc();
        assert_eq!(t.counter("hits").unwrap().get(), 1, "registry is shared");
        shard.event(Level::INFO, "test", "shard-local".into());
        assert!(t.flight_dump().is_empty(), "recorders are per child");
        assert_eq!(shard.flight().unwrap().label(), "shard0");
        assert!(!Telemetry::disabled().child("shard0").enabled());
    }

    #[test]
    fn deterministic_mode_records_zero_durations() {
        let t = Telemetry::new(TelemetryConfig::default());
        assert!(t.clock().is_none());
        assert_eq!(Telemetry::elapsed_ns(t.clock()), 0);
        let wall =
            Telemetry::new(TelemetryConfig { wall_clock: true, ..TelemetryConfig::default() });
        assert!(wall.clock().is_some());
    }

    #[test]
    fn tracing_is_off_by_default_and_contexts_degrade_to_none() {
        let t = Telemetry::new(TelemetryConfig::default());
        assert!(!t.tracing());
        let ctx = t.trace_root("request", 0, &[]);
        assert!(ctx.is_none());
        t.trace_child(ctx, "queue", 0, 5, &[]);
        t.trace_close(ctx, 5, &[]);
        assert!(t.trace_dump().is_empty());
        assert_eq!(t.chrome_trace(), "[\n\n]\n");
        assert!(!Telemetry::disabled().tracing());
    }

    #[test]
    fn children_share_the_trace_sink() {
        let t = Telemetry::new(TelemetryConfig { tracing: true, ..TelemetryConfig::default() });
        assert!(t.tracing());
        let shard = t.child("shard0");
        let ctx = t.trace_root("request", 3, &[("class", "batch".into())]);
        assert!(ctx.is_some());
        shard.trace_child(ctx, "probe.shard0", 3, 3, &[("fit", "yes".into())]);
        t.trace_close(ctx, 7, &[("outcome", "admitted".into())]);
        let spans = t.trace_dump();
        assert_eq!(spans.len(), 2, "the child's span lands in the parent's sink");
        assert_eq!(spans[1].name, "probe.shard0");
        assert_eq!(spans[0].end, 7);
    }

    #[test]
    fn subscriber_evicts_span_names_when_the_last_handle_closes() {
        let t = Telemetry::new(TelemetryConfig::default());
        let dispatch = t.dispatch();
        tracing::dispatcher::with_default(&dispatch, || {
            for _ in 0..100 {
                let span = tracing::info_span!("wave");
                let clone = span.clone();
                drop(span);
                assert_eq!(
                    t.gauge("kairos.tracing.open_spans").unwrap().get(),
                    1,
                    "a live clone keeps the name entry alive"
                );
                drop(clone);
                assert_eq!(t.gauge("kairos.tracing.open_spans").unwrap().get(), 0);
            }
        });
        assert_eq!(t.counter("kairos.tracing.spans").unwrap().get(), 100);
    }

    #[test]
    fn dispatch_bridges_tracing_macros_into_the_hub() {
        let t = Telemetry::new(TelemetryConfig::default());
        let dispatch = t.dispatch();
        tracing::dispatcher::with_default(&dispatch, || {
            let span = tracing::info_span!("wave");
            span.in_scope(|| tracing::warn!("queue {} full", "low"));
        });
        let messages: Vec<_> = t.flight_dump().into_iter().map(|event| event.message).collect();
        assert_eq!(messages, vec!["enter wave", "queue low full", "exit wave"]);
        assert_eq!(t.counter("kairos.tracing.events").unwrap().get(), 1);
        assert_eq!(t.counter("kairos.tracing.spans").unwrap().get(), 1);
    }
}
