//! The named-metric registry and its deterministic snapshot/render path.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

/// One registered instrument.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named instruments.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a lock and is
/// meant to happen once, at wiring time; the returned `Arc` handles are
/// what hot paths record through, lock-free. Names are free-form
/// dot-separated strings (`kairos.core.phase.binding.ns`); the
/// [`Registry::snapshot`] iterates them in name order, which is what
/// makes rendering deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(counter) => counter.clone(),
            other => panic!("metric `{name}` is already registered as a {}", kind_of(other)),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(gauge) => gauge.clone(),
            other => panic!("metric `{name}` is already registered as a {}", kind_of(other)),
        }
    }

    /// The histogram registered under `name`, creating it with `bounds`
    /// on first use (later calls ignore `bounds` and return the existing
    /// instrument).
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind, or
    /// when creating with invalid bounds ([`Histogram::new`]).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(histogram) => histogram.clone(),
            other => panic!("metric `{name}` is already registered as a {}", kind_of(other)),
        }
    }

    /// A point-in-time copy of every registered metric, in name order.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry lock");
        Snapshot {
            metrics: metrics
                .iter()
                .map(|(name, metric)| MetricSnapshot {
                    name: name.clone(),
                    value: match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

fn kind_of(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// The frozen value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's full statistics.
    Histogram(HistogramSnapshot),
}

/// One named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// The registered (dot-separated) name.
    pub name: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// A point-in-time copy of a whole [`Registry`], in name order.
///
/// Because every value is an integer and the order is fixed, both render
/// paths — [`Snapshot::render_text`] and the JSON embedding the sim
/// report performs — are byte-stable for identical runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Dots and dashes in registered names become underscores (the
    /// exposition grammar's identifier rule); histograms render the
    /// standard cumulative `_bucket{le=...}` / `_sum` / `_count` series
    /// plus non-standard `_min` / `_max` series, which carry the
    /// per-phase summaries the registry tracks natively. Since `_min` /
    /// `_max` are not members of the histogram series family, each is
    /// announced with its own `# TYPE ... gauge` header.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for metric in &self.metrics {
            let name = sanitise(&metric.name);
            match &metric.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0;
                    for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                        cumulative += bucket;
                        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                    // `_min` / `_max` are not part of the histogram type's
                    // series family, so each needs its own TYPE header —
                    // scrapers reject unannounced sample names under a
                    // foreign declaration.
                    out.push_str(&format!("# TYPE {name}_min gauge\n{name}_min {}\n", h.min));
                    out.push_str(&format!("# TYPE {name}_max gauge\n{name}_max {}\n", h.max));
                }
            }
        }
        out
    }
}

fn sanitise(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshots_are_name_ordered() {
        let registry = Registry::new();
        let b = registry.counter("b.count");
        registry.counter("b.count").add(2);
        b.inc();
        registry.gauge("a.depth").set(-3);
        registry.histogram("c.ns", &[10, 100]).record(7);
        let snapshot = registry.snapshot();
        let names: Vec<_> = snapshot.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a.depth", "b.count", "c.ns"]);
        assert_eq!(snapshot.metrics[1].value, MetricValue::Counter(3));
        assert_eq!(snapshot.metrics[0].value, MetricValue::Gauge(-3));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn text_exposition_is_prometheus_shaped_and_deterministic() {
        let registry = Registry::new();
        registry.counter("kairos.core.admit.ok").add(2);
        let h = registry.histogram("kairos.core.phase.binding.ns", &[1_000, 1_000_000]);
        h.record(0);
        h.record(5_000);
        h.record(2_000_000);
        let text = registry.snapshot().render_text();
        assert!(text.contains("# TYPE kairos_core_admit_ok counter\nkairos_core_admit_ok 2\n"));
        assert!(text.contains("kairos_core_phase_binding_ns_bucket{le=\"1000\"} 1\n"));
        assert!(text.contains("kairos_core_phase_binding_ns_bucket{le=\"1000000\"} 2\n"));
        assert!(text.contains("kairos_core_phase_binding_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("kairos_core_phase_binding_ns_count 3\n"));
        assert!(text.contains(
            "# TYPE kairos_core_phase_binding_ns_min gauge\nkairos_core_phase_binding_ns_min 0\n"
        ));
        assert!(text.contains(
            "# TYPE kairos_core_phase_binding_ns_max gauge\nkairos_core_phase_binding_ns_max 2000000\n"
        ));
        assert_eq!(text, registry.snapshot().render_text(), "rendering is deterministic");
    }

    #[test]
    fn every_exposition_series_sits_under_its_own_type_header() {
        let registry = Registry::new();
        registry.histogram("probe.ns", &[10]).record(3);
        let text = registry.snapshot().render_text();
        let mut announced = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                announced.push(rest.split(' ').next().unwrap().to_owned());
            } else {
                let sample = line.split([' ', '{']).next().unwrap();
                let family = sample
                    .strip_suffix("_bucket")
                    .or_else(|| sample.strip_suffix("_sum"))
                    .or_else(|| sample.strip_suffix("_count"))
                    .unwrap_or(sample);
                assert!(
                    announced.iter().any(|name| name == family),
                    "sample `{sample}` rendered before a TYPE header for `{family}`"
                );
            }
        }
        assert_eq!(announced, vec!["probe_ns", "probe_ns_min", "probe_ns_max"]);
    }

    #[test]
    fn empty_registry_renders_an_empty_exposition() {
        let registry = Registry::new();
        let snapshot = registry.snapshot();
        assert!(snapshot.is_empty());
        assert_eq!(snapshot.render_text(), "");
    }

    #[test]
    fn zero_sample_histogram_exposes_zeroed_series() {
        let registry = Registry::new();
        registry.histogram("idle.ns", &[10]);
        let text = registry.snapshot().render_text();
        assert!(text.contains("# TYPE idle_ns histogram\n"));
        assert!(text.contains("idle_ns_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("idle_ns_count 0\n"));
        assert!(text.contains("# TYPE idle_ns_min gauge\nidle_ns_min 0\n"));
        assert!(text.contains("# TYPE idle_ns_max gauge\nidle_ns_max 0\n"));
    }
}
