//! The three metric instruments: counters, gauges and fixed-bucket
//! histograms. All hot-path recording is a single atomic operation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// This is *the* counter implementation of the workspace — subsystem
/// tallies (`Platform::txn_count`, the sim engine's totals) embed it
/// directly, and the [`Registry`](crate::Registry) shares it behind an
/// `Arc` — so every layer counts the same way.
///
/// Interior mutability keeps increments `&self` (hot paths hold shared
/// handles); [`Clone`] copies the *current value* into an independent
/// counter, so cloning an owner (a checkpointed `Platform`) freezes its
/// tallies exactly like a plain integer field would.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter { value: AtomicU64::new(self.get()) }
    }
}

impl PartialEq for Counter {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl Eq for Counter {}

/// An instantaneous signed value (queue depths, admitted populations).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the value to `value` if it is larger (a high-water mark).
    #[inline]
    pub fn set_max(&self, value: i64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `u64` observations (durations in
/// nanoseconds, waits in ticks, scaled scores).
///
/// Buckets are cumulative-style upper bounds fixed at construction: an
/// observation lands in the first bucket whose bound is `>=` the value,
/// or in the implicit overflow bucket past the last bound. Alongside the
/// buckets the histogram tracks count, saturating sum, min and max, so
/// per-phase min/mean/max summaries need no extra machinery. Every
/// recording is a handful of relaxed atomics — safe and deterministic to
/// share across probe threads, because increments commute.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus the trailing overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must strictly ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The configured upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let slot = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate instead of wrapping: a long wall-clock run must never
        // fold its sum back to a small number.
        let _ = self.sum.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |sum| {
            Some(sum.saturating_add(value))
        });
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of all tracked statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// The frozen statistics of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The configured upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; the final slot is the overflow
    /// bucket for observations above every bound.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Smallest observation (`0` when empty).
    pub min: u64,
    /// Largest observation (`0` when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The integer mean observation (`0` when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The bucket-interpolated `p`-th percentile (`p` in `0..=100`;
    /// `0` when empty).
    ///
    /// Uses the nearest-rank definition to pick the bucket, then
    /// interpolates linearly inside it between the previous bound
    /// (exclusive lower edge) and the bucket's own bound — the overflow
    /// bucket interpolates up to the observed `max`. The estimate is
    /// clamped to `[min, max]`, so exact-at-the-edges percentiles (p0,
    /// p100) always land on real observations. Pure integer math on the
    /// frozen buckets: byte-stable across identical runs.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.min(100);
        // Nearest rank: ceil(count * p / 100), clamped to [1, count].
        let rank = (u128::from(self.count) * u128::from(p)).div_ceil(100).max(1);
        let mut cumulative: u128 = 0;
        for (slot, &bucket) in self.buckets.iter().enumerate() {
            let next = cumulative + u128::from(bucket);
            if bucket > 0 && rank <= next {
                let lower = if slot == 0 { 0 } else { self.bounds[slot - 1] };
                let upper = self.bounds.get(slot).copied().unwrap_or(self.max).max(lower);
                let position = rank - cumulative; // in 1..=bucket
                let width = u128::from(upper - lower);
                let estimate = u128::from(lower) + width * position / u128::from(bucket);
                let estimate = u64::try_from(estimate).unwrap_or(u64::MAX);
                return estimate.clamp(self.min, self.max);
            }
            cumulative = next;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_and_clone_by_value() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let frozen = c.clone();
        c.inc();
        assert_eq!(frozen.get(), 5, "a clone is an independent snapshot");
        assert_eq!(c.get(), 6);
        assert_ne!(frozen, c);
    }

    #[test]
    fn gauges_track_instantaneous_and_high_water_values() {
        let g = Gauge::new();
        g.set(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set_max(7);
        g.set_max(4);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_zero_lands_in_the_first_bucket() {
        let h = Histogram::new(&[10, 100]);
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![1, 0, 0]);
        assert_eq!((snap.count, snap.sum, snap.min, snap.max), (1, 0, 0, 0));
    }

    #[test]
    fn histogram_max_value_lands_in_the_overflow_bucket() {
        let h = Histogram::new(&[10, 100]);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![0, 0, 1]);
        assert_eq!(snap.max, u64::MAX);
    }

    #[test]
    fn histogram_bound_values_are_inclusive() {
        let h = Histogram::new(&[10, 100]);
        h.record(10);
        h.record(11);
        h.record(100);
        assert_eq!(h.snapshot().buckets, vec![1, 2, 0]);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let h = Histogram::new(&[10]);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.sum, u64::MAX, "sum must saturate");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.mean(), u64::MAX / 2);
    }

    #[test]
    fn empty_histogram_reports_zeroed_extrema() {
        let snap = Histogram::new(&[1]).snapshot();
        assert_eq!((snap.count, snap.sum, snap.min, snap.max, snap.mean()), (0, 0, 0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "strictly ascend")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let h = Histogram::new(&[10, 100, 1000]);
        // 90 observations in (10, 100], 10 in (100, 1000].
        for _ in 0..90 {
            h.record(50);
        }
        for _ in 0..10 {
            h.record(500);
        }
        let snap = h.snapshot();
        // p50 → rank 50, bucket (10, 100], position 50/90.
        assert_eq!(snap.percentile(50), 10 + 90 * 50 / 90);
        // p95 → rank 95 lands in the (100, 1000] bucket; the raw
        // interpolation (550) clamps to the observed max.
        assert_eq!(snap.percentile(95), 500);
        assert_eq!(snap.percentile(100), snap.max);
        assert_eq!(snap.percentile(0), snap.min, "p0 clamps to the smallest observation");
    }

    #[test]
    fn percentiles_clamp_to_observed_extrema() {
        let h = Histogram::new(&[1024]);
        h.record(3);
        h.record(5);
        let snap = h.snapshot();
        // Both land in the huge first bucket; clamping keeps estimates
        // inside [3, 5] instead of interpolating over [0, 1024].
        for p in [1, 50, 99] {
            let estimate = snap.percentile(p);
            assert!((3..=5).contains(&estimate), "p{p} = {estimate} escaped [min, max]");
        }
        assert_eq!(Histogram::new(&[1]).snapshot().percentile(50), 0, "empty → 0");
    }

    #[test]
    fn percentile_of_overflow_bucket_interpolates_to_max() {
        let h = Histogram::new(&[10]);
        h.record(1_000);
        h.record(2_000);
        let snap = h.snapshot();
        assert_eq!(snap.percentile(100), 2_000);
        assert!(snap.percentile(50) >= 10);
        assert!(snap.percentile(50) <= 2_000);
    }
}
