//! Property-based tests of the relocation invariants: a failed or
//! declined migration never leaves a partially-moved binding, victim sets
//! are minimal with respect to single-victim removal, and planning never
//! perturbs the platform state.

use proptest::prelude::*;

use kairos_app::{Application, ApplicationBuilder, Implementation, TaskRole};
use kairos_core::{Kairos, KairosConfig, MigrationError};
use kairos_platform::{topology, AppId, ElementKind, ResourceVector};
use kairos_reloc::{compact, select_victims};

/// A chain of `tasks` DSP tasks, each demanding `cpu`.
fn chain(name: &str, tasks: usize, cpu: u64) -> Application {
    let imp = Implementation::new(ElementKind::Dsp, ResourceVector::new(cpu, 4, 0, 0), 50, 1);
    let mut b = ApplicationBuilder::new(name);
    let mut prev = None;
    for i in 0..tasks {
        let t = b.add_task(format!("t{i}"), TaskRole::Internal, vec![imp]);
        if let Some(p) = prev {
            b.add_channel(p, t, 10, 1);
        }
        prev = Some(t);
    }
    b.build().unwrap()
}

/// Admits a generated workload onto a 3x3 DSP mesh, returning the manager
/// and the admitted ids. Apps that don't fit are simply skipped.
fn occupied_mesh(specs: &[(u8, u8)]) -> (Kairos, Vec<AppId>) {
    let mut kairos = Kairos::new(topology::dsp_mesh(3, 3), KairosConfig::default());
    let mut ids = Vec::new();
    for (n, &(tasks, cpu)) in specs.iter().enumerate() {
        let tasks = 1 + (tasks % 3) as usize;
        let cpu = 200 + 100 * (cpu % 6) as u64;
        if let Ok(report) = kairos.admit(&chain(&format!("a{n}"), tasks, cpu)) {
            ids.push(report.app_id);
        }
    }
    (kairos, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A migration that fails (nowhere to go) or is declined by the
    /// acceptance check rolls back to the byte-identical pre-move state:
    /// no binding is ever left partially moved.
    #[test]
    fn failed_and_declined_migrations_roll_back_exactly(
        specs in proptest::collection::vec((0u8..=255, 0u8..=255), 1..10),
        avoid_mask in 0u16..512,
    ) {
        let (mut kairos, ids) = occupied_mesh(&specs);
        let before = kairos.platform().checkpoint();
        let layouts: Vec<_> =
            ids.iter().map(|&id| kairos.layout(id).unwrap().clone()).collect();

        // Declined moves must be perfect no-ops.
        for &id in &ids {
            let err = kairos.migrate_if(id, &[], |_, _, _| false).unwrap_err();
            prop_assert!(matches!(err, MigrationError::Declined | MigrationError::Admission(_)));
        }
        prop_assert_eq!(kairos.platform().checkpoint(), before.clone());

        // Moves with an arbitrary (often infeasible) avoidance mask either
        // commit fully or roll back fully — and an avoided element never
        // hosts the app afterwards.
        let avoid: Vec<_> = kairos
            .platform()
            .element_ids()
            .filter(|e| avoid_mask & (1 << (e.index() % 16)) != 0)
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            match kairos.migrate(id, &avoid) {
                Ok(report) => {
                    for (_, e) in report.new_layout.placement.iter() {
                        prop_assert!(!avoid.contains(&e), "avoided element reused");
                    }
                    prop_assert_eq!(kairos.layout(id).unwrap(), &report.new_layout);
                }
                Err(_) => {
                    prop_assert_eq!(kairos.layout(id).unwrap(), &layouts[i],
                        "failed move must leave the old layout in force");
                }
            }
            // No avoidance failure-mark may leak out of the move.
            let platform = kairos.platform();
            prop_assert!(!platform.element_ids().any(|e| platform.is_failed(e)));
        }

        // Whatever happened, the ledger still balances: releasing all
        // admitted applications restores the idle platform.
        for &id in &ids {
            prop_assert!(kairos.release(id));
        }
        prop_assert!(kairos.platform().is_idle(), "claims = releases + live violated");
    }

    /// Victim plans are minimal w.r.t. single-victim removal and planning
    /// itself is state-neutral.
    #[test]
    fn victim_sets_are_minimal_and_planning_is_state_neutral(
        specs in proptest::collection::vec((0u8..=255, 0u8..=255), 2..10),
        req_tasks in 1u8..4,
        req_cpu in 0u8..4,
    ) {
        let (mut kairos, ids) = occupied_mesh(&specs);
        let before = kairos.platform().checkpoint();
        let request = chain("req", req_tasks as usize, 500 + 150 * req_cpu as u64);

        if let Some(plan) = select_victims(&mut kairos, &request, &ids, ids.len()) {
            prop_assert!(!plan.victims.is_empty());
            prop_assert!(
                kairos.probe_admit_without(&request, &plan.victims).is_ok(),
                "the plan must actually unblock the request"
            );
            if plan.victims.len() > 1 {
                for i in 0..plan.victims.len() {
                    let mut trial = plan.victims.clone();
                    trial.remove(i);
                    prop_assert!(
                        kairos.probe_admit_without(&request, &trial).is_err(),
                        "victim {} is redundant in {:?}",
                        i,
                        plan.victims
                    );
                }
            }
        }
        prop_assert_eq!(kairos.platform().checkpoint(), before,
            "victim planning must not perturb the platform");
    }

    /// Compaction sweeps never increase fragmentation, never change the
    /// admitted-application set, and keep the ledger balanced.
    #[test]
    fn compaction_is_safe_under_arbitrary_occupancy(
        specs in proptest::collection::vec((0u8..=255, 0u8..=255), 1..12),
        releases in proptest::collection::vec(0u8..=255, 0..6),
        budget in 0usize..6,
    ) {
        let (mut kairos, mut ids) = occupied_mesh(&specs);
        // Randomly release some applications to open up holes.
        for &r in &releases {
            if ids.is_empty() {
                break;
            }
            let id = ids.remove(r as usize % ids.len());
            prop_assert!(kairos.release(id));
        }
        let before_ids = kairos.admitted_ids();
        let report = compact(&mut kairos, budget);
        prop_assert!(report.fragmentation_after <= report.fragmentation_before);
        prop_assert!(report.move_count() <= budget);
        prop_assert_eq!(kairos.admitted_ids(), before_ids,
            "compaction must move applications, not add or drop them");
        for id in kairos.admitted_ids() {
            prop_assert!(kairos.release(id));
        }
        prop_assert!(kairos.platform().is_idle());
    }
}
