//! Defragmenting compaction: migrate applications to merge free islands.

use kairos_core::Kairos;
use kairos_platform::{external_fragmentation, AppId};
use kairos_telemetry::Level;

use crate::metrics::RelocMetrics;

/// One accepted move of a compaction sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactMove {
    /// The migrated application.
    pub app_id: AppId,
    /// Tasks whose hosting element changed.
    pub moved_tasks: usize,
    /// External fragmentation after this move committed.
    pub fragmentation_after: f64,
}

/// Result of one [`compact`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactReport {
    /// External fragmentation before the sweep.
    pub fragmentation_before: f64,
    /// External fragmentation after the sweep.
    pub fragmentation_after: f64,
    /// The accepted moves, in the order they were applied.
    pub moves: Vec<CompactMove>,
}

impl CompactReport {
    /// Number of applications the sweep actually moved.
    pub fn move_count(&self) -> usize {
        self.moves.len()
    }
}

/// Sweeps the admitted applications in ascending-id order, live-migrating
/// each one and keeping only moves that *strictly reduce* external
/// resource fragmentation (paper §III-A) — the defragmentation pass that
/// merges scattered free crumbs back into contiguous regions future
/// applications can use.
///
/// Each candidate move runs through [`Kairos::migrate_if`]: the
/// acceptance check compares fragmentation after the completed move
/// against the value before it, and any declined or infeasible move rolls
/// back atomically, so a sweep can only ever improve the metric. At most
/// `max_moves` applications are moved per sweep (bounding the
/// reconfiguration work a single sweep may impose on running
/// applications); `0` makes the sweep a no-op probe of current
/// fragmentation.
///
/// Resolves a fresh [`RelocMetrics`] per call; repeated drivers should
/// resolve once and call [`compact_with`].
pub fn compact(kairos: &mut Kairos, max_moves: usize) -> CompactReport {
    let metrics = RelocMetrics::new(kairos.telemetry());
    compact_with(kairos, max_moves, metrics.as_ref())
}

/// [`compact`] against pre-resolved instruments (`None` records nothing).
pub fn compact_with(
    kairos: &mut Kairos,
    max_moves: usize,
    metrics: Option<&RelocMetrics>,
) -> CompactReport {
    let telemetry = kairos.telemetry().clone();
    let _span = telemetry.span("kairos_reloc", "compact");
    if let Some(m) = metrics {
        m.compact_sweeps.inc();
    }
    let fragmentation_before = external_fragmentation(kairos.platform());
    let mut moves = Vec::new();
    for id in kairos.admitted_ids() {
        if moves.len() >= max_moves {
            break;
        }
        let current = external_fragmentation(kairos.platform());
        if let Ok(report) =
            kairos.migrate_if(id, &[], |_, _, platform| external_fragmentation(platform) < current)
        {
            moves.push(CompactMove {
                app_id: id,
                moved_tasks: report.moved_tasks,
                fragmentation_after: external_fragmentation(kairos.platform()),
            });
        }
    }
    if let Some(m) = metrics {
        m.compact_moves.add(moves.len() as u64);
        telemetry.event(
            Level::INFO,
            "kairos_reloc",
            format!("compaction sweep moved {} application(s)", moves.len()),
        );
    }
    CompactReport {
        fragmentation_before,
        fragmentation_after: external_fragmentation(kairos.platform()),
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_app::{Application, ApplicationBuilder, Implementation, TaskRole};
    use kairos_core::KairosConfig;
    use kairos_platform::{topology, ElementKind, ResourceVector};

    fn single(name: &str, cpu: u64) -> Application {
        let imp = Implementation::new(ElementKind::Dsp, ResourceVector::new(cpu, 8, 0, 0), 50, 1);
        let mut b = ApplicationBuilder::new(name);
        b.add_task("t", TaskRole::Internal, vec![imp]);
        b.build().unwrap()
    }

    /// Fills a DSP line alternately and releases every other application,
    /// leaving a maximally fragmented checkerboard.
    fn checkerboard() -> (Kairos, f64) {
        let mut kairos = Kairos::new(topology::dsp_line(8), KairosConfig::default());
        let ids: Vec<_> =
            (0..8).map(|i| kairos.admit(&single(&format!("a{i}"), 900)).unwrap().app_id).collect();
        for id in ids.iter().skip(1).step_by(2) {
            kairos.release(*id);
        }
        let frag = external_fragmentation(kairos.platform());
        assert!(frag > 0.9, "checkerboard must be heavily fragmented, got {frag}");
        (kairos, frag)
    }

    #[test]
    fn compact_reduces_checkerboard_fragmentation() {
        let (mut kairos, before) = checkerboard();
        let report = compact(&mut kairos, 8);
        assert_eq!(report.fragmentation_before, before);
        assert!(
            report.fragmentation_after < before,
            "sweep must improve fragmentation: {report:?}"
        );
        assert!(!report.moves.is_empty());
        // Monotone improvement move by move.
        let mut last = before;
        for mv in &report.moves {
            assert!(mv.fragmentation_after < last, "each accepted move strictly improves");
            assert!(mv.moved_tasks > 0, "accepted moves actually move something");
            last = mv.fragmentation_after;
        }
        // Accounting balance: everything still releases cleanly.
        for id in kairos.admitted_ids() {
            assert!(kairos.release(id));
        }
        assert!(kairos.platform().is_idle());
    }

    #[test]
    fn compact_respects_the_move_budget() {
        let (mut kairos, _) = checkerboard();
        let report = compact(&mut kairos, 1);
        assert!(report.move_count() <= 1);
        let report = compact(&mut kairos, 0);
        assert_eq!(report.move_count(), 0);
        assert_eq!(report.fragmentation_before, report.fragmentation_after);
    }

    #[test]
    fn compact_on_an_idle_platform_is_a_noop() {
        let mut kairos = Kairos::new(topology::dsp_line(4), KairosConfig::default());
        let report = compact(&mut kairos, 4);
        assert_eq!(report.move_count(), 0);
        assert_eq!(report.fragmentation_before, 0.0);
        assert_eq!(report.fragmentation_after, 0.0);
    }

    #[test]
    fn compact_is_deterministic() {
        let (mut a, _) = checkerboard();
        let (mut b, _) = checkerboard();
        assert_eq!(compact(&mut a, 8), compact(&mut b, 8));
    }
}
