//! # kairos-reloc
//!
//! The relocation planner: the layer that turns the Kairos admitter into a
//! manager of *running* applications.
//!
//! The paper's run-time manager only ever admits or rejects — once a
//! mapping is claimed it is frozen until the application leaves, so
//! high-criticality arrivals starve behind fragmented low-priority
//! occupancy. This crate closes that gap with three mechanisms, all built
//! on the platform's claim-journal transactions so no operation ever
//! leaves an application half-moved:
//!
//! * **Preemption planning** ([`select_victims`]) — given a blocked
//!   request and an ordered list of preemptible running applications, find
//!   a victim set whose eviction provably unblocks the request
//!   ([`Kairos::probe_admit_without`] runs the full pipeline inside an
//!   always-rolled-back transaction), *minimal* with respect to
//!   single-victim removal: dropping any one victim from the set leaves
//!   the request blocked.
//! * **Live migration** (re-exported [`Kairos::migrate`] /
//!   [`Kairos::migrate_if`]) — re-bind a running application to a
//!   different tile/route set via a journal-backed two-phase move (claim
//!   new under a scratch id → transfer → release old) instead of evicting
//!   and re-admitting it. The application's id is stable across the move
//!   and a failure at any point rolls back atomically.
//! * **Defragmentation** ([`compact`]) — a sweep that migrates admitted
//!   applications one at a time, keeping only moves that strictly reduce
//!   external resource fragmentation (the paper's §III-A metric, computed
//!   by `kairos_platform::external_fragmentation`).
//!
//! The `kairos-admitd` front-end drives [`select_victims`] from its
//! preemption hook (blocked critical requests, `QueueFull` refusals) and
//! re-queues evicted victims as retryable requests; the `kairos-sim`
//! engine drives [`compact`] from its periodic defrag event. Everything
//! here is deterministic: identical inputs produce identical plans.
//!
//! ## Example
//!
//! ```
//! use kairos_core::{Kairos, KairosConfig};
//! use kairos_app::{ApplicationBuilder, TaskRole, Implementation};
//! use kairos_platform::{topology, ElementKind, ResourceVector};
//!
//! let mut kairos = Kairos::new(topology::dsp_mesh(2, 2), KairosConfig::default());
//! let imp = Implementation::new(ElementKind::Dsp, ResourceVector::new(900, 16, 0, 0), 50, 1);
//! let mut b = ApplicationBuilder::new("resident");
//! b.add_task("t", TaskRole::Internal, vec![imp]);
//! let resident = b.build()?;
//! let mut ids = Vec::new();
//! for _ in 0..4 {
//!     ids.push(kairos.admit(&resident)?.app_id); // fill all four DSPs
//! }
//!
//! // A blocked request: nothing fits until someone is preempted.
//! let plan = kairos_reloc::select_victims(&mut kairos, &resident, &ids, 4)
//!     .expect("one eviction suffices");
//! assert_eq!(plan.victims.len(), 1, "minimal victim set");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod compact;
mod metrics;
mod victim;

pub use compact::{compact, compact_with, CompactMove, CompactReport};
pub use metrics::RelocMetrics;
pub use victim::{select_victims, select_victims_with, VictimPlan};

// The migration primitive itself lives in `kairos-core` (it needs the
// manager's internals); re-export it so relocation users have one import.
pub use kairos_core::{Kairos, MigrationError, MigrationReport};
