//! Pre-resolved `kairos.reloc.*` instruments.

use std::sync::Arc;

use kairos_telemetry::{Counter, Telemetry};

/// The relocation layer's instruments, resolved once at construction —
/// the same pattern every other layer uses, so planner calls on the hot
/// path never touch the registry's name map.
///
/// Hold one wherever relocation is driven repeatedly (the admission
/// front-end resolves one in `set_telemetry`, the sim's defrag event
/// reuses the front-end's); the free [`select_victims`](crate::select_victims)
/// / [`compact`](crate::compact) wrappers resolve a fresh set per call
/// for standalone use.
#[derive(Debug, Clone)]
pub struct RelocMetrics {
    /// `kairos.reloc.plans.requested`.
    pub plans_requested: Arc<Counter>,
    /// `kairos.reloc.plans.none`.
    pub plans_none: Arc<Counter>,
    /// `kairos.reloc.plans.found`.
    pub plans_found: Arc<Counter>,
    /// `kairos.reloc.plan.victims`.
    pub plan_victims: Arc<Counter>,
    /// `kairos.reloc.compact.sweeps`.
    pub compact_sweeps: Arc<Counter>,
    /// `kairos.reloc.compact.moves`.
    pub compact_moves: Arc<Counter>,
}

impl RelocMetrics {
    /// Resolves every instrument against `telemetry`'s registry; `None`
    /// when the handle is disabled.
    pub fn new(telemetry: &Telemetry) -> Option<Self> {
        let registry = telemetry.registry()?;
        Some(RelocMetrics {
            plans_requested: registry.counter("kairos.reloc.plans.requested"),
            plans_none: registry.counter("kairos.reloc.plans.none"),
            plans_found: registry.counter("kairos.reloc.plans.found"),
            plan_victims: registry.counter("kairos.reloc.plan.victims"),
            compact_sweeps: registry.counter("kairos.reloc.compact.sweeps"),
            compact_moves: registry.counter("kairos.reloc.compact.moves"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_telemetry::TelemetryConfig;

    #[test]
    fn resolves_only_on_enabled_handles() {
        assert!(RelocMetrics::new(&Telemetry::disabled()).is_none());
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let metrics = RelocMetrics::new(&telemetry).expect("enabled handle resolves");
        metrics.plans_requested.inc();
        assert_eq!(telemetry.counter("kairos.reloc.plans.requested").unwrap().get(), 1);
    }
}
