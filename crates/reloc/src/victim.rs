//! Preemption victim selection.

use kairos_app::Application;
use kairos_core::{ExecutionLayout, Kairos};
use kairos_platform::AppId;
use kairos_telemetry::Level;

use crate::metrics::RelocMetrics;

/// A validated preemption plan: evicting `victims` (all of them) lets the
/// blocked request through.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimPlan {
    /// The applications to evict, in the candidate order they were chosen.
    pub victims: Vec<AppId>,
    /// The layout the request would be admitted under once the victims
    /// are gone — preemption-by-migration planners use its placement as
    /// the region victims must vacate.
    pub layout: ExecutionLayout,
}

impl VictimPlan {
    /// The elements of the planned layout's placement, deduplicated —
    /// the region a migrating victim must avoid.
    pub fn target_elements(&self) -> Vec<kairos_platform::ElementId> {
        let mut els: Vec<_> = self.layout.placement.iter().map(|(_, e)| e).collect();
        els.sort_unstable();
        els.dedup();
        els
    }
}

/// Selects a victim set among `candidates` whose eviction unblocks
/// `request`, or `None` when no prefix of at most `max_victims` candidates
/// suffices.
///
/// `candidates` is an *ordered* preference list (cheapest victim first —
/// the caller encodes its eviction-cost policy in the order, e.g.
/// lowest-priority-first then smallest-first). The planner grows the set
/// greedily along that order until a state-neutral admission probe
/// ([`Kairos::probe_admit_without`]) succeeds, then prunes it to
/// *minimality with respect to single-victim removal*: for every victim
/// `v` in the returned set, the probe without `set \ {v}` still fails, so
/// no victim is evicted gratuitously.
///
/// The platform is left exactly as found — every probe runs in a
/// rolled-back transaction. Identical inputs produce identical plans.
///
/// Resolves a fresh [`RelocMetrics`] per call; repeated drivers should
/// resolve once and call [`select_victims_with`].
pub fn select_victims(
    kairos: &mut Kairos,
    request: &Application,
    candidates: &[AppId],
    max_victims: usize,
) -> Option<VictimPlan> {
    let metrics = RelocMetrics::new(kairos.telemetry());
    select_victims_with(kairos, request, candidates, max_victims, metrics.as_ref())
}

/// [`select_victims`] against pre-resolved instruments (`None` records
/// nothing).
pub fn select_victims_with(
    kairos: &mut Kairos,
    request: &Application,
    candidates: &[AppId],
    max_victims: usize,
    metrics: Option<&RelocMetrics>,
) -> Option<VictimPlan> {
    let telemetry = kairos.telemetry().clone();
    let _span = telemetry.span("kairos_reloc", "select_victims");
    if let Some(m) = metrics {
        m.plans_requested.inc();
    }
    if candidates.is_empty() || max_victims == 0 {
        return None;
    }

    // Grow greedily along the preference order. The successful probe's
    // layout is kept — it is the plan's layout unless pruning shrinks the
    // set further.
    let mut set: Vec<AppId> = Vec::new();
    let mut layout = None;
    for &candidate in candidates.iter().take(max_victims) {
        set.push(candidate);
        if let Ok(l) = kairos.probe_admit_without(request, &set) {
            layout = Some(l);
            break;
        }
    }
    let Some(mut layout) = layout else {
        if let Some(m) = metrics {
            m.plans_none.inc();
            telemetry.event(
                Level::DEBUG,
                "kairos_reloc",
                format!("no victim set of at most {max_victims} unblocks {}", request.name()),
            );
        }
        return None;
    };

    // Prune to minimality w.r.t. single-victim removal. Later victims are
    // reconsidered first: the last one added was load-bearing by
    // construction, but earlier, cheaper picks may have become redundant.
    let mut i = 0;
    while i < set.len() && set.len() > 1 {
        let mut trial = set.clone();
        trial.remove(i);
        if let Ok(l) = kairos.probe_admit_without(request, &trial) {
            set = trial;
            layout = l;
        } else {
            i += 1;
        }
    }

    if let Some(m) = metrics {
        m.plans_found.inc();
        m.plan_victims.add(set.len() as u64);
        telemetry.event(
            Level::INFO,
            "kairos_reloc",
            format!("plan for {}: {} victim(s)", request.name(), set.len()),
        );
    }
    Some(VictimPlan { victims: set, layout })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_app::{ApplicationBuilder, Implementation, TaskRole};
    use kairos_core::KairosConfig;
    use kairos_platform::{topology, ElementKind, ResourceVector};

    fn task_app(name: &str, cpu: u64, tasks: usize) -> Application {
        let imp = Implementation::new(ElementKind::Dsp, ResourceVector::new(cpu, 8, 0, 0), 50, 1);
        let mut b = ApplicationBuilder::new(name);
        let mut prev = None;
        for i in 0..tasks {
            let t = b.add_task(format!("t{i}"), TaskRole::Internal, vec![imp]);
            if let Some(p) = prev {
                b.add_channel(p, t, 10, 1);
            }
            prev = Some(t);
        }
        b.build().unwrap()
    }

    fn filled_mesh() -> (Kairos, Vec<AppId>) {
        let mut kairos = Kairos::new(topology::dsp_mesh(2, 2), KairosConfig::default());
        let resident = task_app("resident", 900, 1);
        let ids: Vec<AppId> = (0..4).map(|_| kairos.admit(&resident).unwrap().app_id).collect();
        (kairos, ids)
    }

    #[test]
    fn single_victim_suffices_for_single_task_request() {
        let (mut kairos, ids) = filled_mesh();
        let before = kairos.platform().checkpoint();
        let request = task_app("req", 900, 1);
        let plan = select_victims(&mut kairos, &request, &ids, 4).unwrap();
        assert_eq!(plan.victims.len(), 1);
        assert_eq!(plan.victims[0], ids[0], "preference order is respected");
        assert_eq!(plan.layout.placement.len(), 1);
        assert_eq!(plan.target_elements().len(), 1);
        assert_eq!(kairos.platform().checkpoint(), before, "planning is state-neutral");
    }

    #[test]
    fn larger_requests_need_more_victims_and_stay_minimal() {
        let (mut kairos, ids) = filled_mesh();
        let request = task_app("req", 900, 3);
        let plan = select_victims(&mut kairos, &request, &ids, 4).unwrap();
        assert_eq!(plan.victims.len(), 3);
        // Minimality: dropping any single victim re-blocks the request.
        for i in 0..plan.victims.len() {
            let mut trial = plan.victims.clone();
            trial.remove(i);
            assert!(
                kairos.probe_admit_without(&request, &trial).is_err(),
                "victim {i} is load-bearing"
            );
        }
    }

    #[test]
    fn hopeless_requests_get_no_plan() {
        let (mut kairos, ids) = filled_mesh();
        // Five whole-DSP tasks can never fit a 2x2 mesh.
        let request = task_app("req", 900, 5);
        assert!(select_victims(&mut kairos, &request, &ids, 4).is_none());
        // A max_victims cap below the need also yields no plan.
        let request = task_app("req", 900, 3);
        assert!(select_victims(&mut kairos, &request, &ids, 2).is_none());
        assert!(select_victims(&mut kairos, &request, &[], 4).is_none());
        assert!(select_victims(&mut kairos, &request, &ids, 0).is_none());
    }

    #[test]
    fn redundant_early_picks_are_pruned() {
        // Mesh holds two small residents and one large one; a large
        // request is blocked. Candidate order lists the small residents
        // first (cheapest), but only evicting the large one helps — the
        // greedy set {small, small, large} must prune to {large}.
        let mut kairos = Kairos::new(topology::dsp_mesh(2, 2), KairosConfig::default());
        let small = task_app("small", 200, 1);
        let large = task_app("large", 800, 4);
        let s1 = kairos.admit(&small).unwrap().app_id;
        let s2 = kairos.admit(&small).unwrap().app_id;
        let l = kairos.admit(&large).unwrap().app_id;
        let request = task_app("req", 700, 4);
        let plan = select_victims(&mut kairos, &request, &[s1, s2, l], 3).unwrap();
        assert_eq!(plan.victims, vec![l], "redundant small victims are pruned");
    }
}
