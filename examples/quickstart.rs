//! Quickstart: build a platform, describe an application, admit it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kairos::app::{ApplicationBuilder, Constraint, Implementation, TaskRole};
use kairos::core::{CostPolicy, Kairos, KairosConfig};
use kairos::platform::{topology, ElementKind, ResourceVector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The platform: the CRISP General Stream Processor of the paper —
    //    an FPGA, five packages of 9 DSPs + 2 memories + 1 test unit, and
    //    an ARM host (62 elements, 45 DSPs).
    let platform = topology::crisp();
    println!("platform: {platform}");

    // 2. The application: a small software-radio pipeline. Every task names
    //    one or more implementations (element kind + resource vector +
    //    worst-case cycles + energy); channels carry bandwidth demands.
    let fpga_frontend =
        Implementation::new(ElementKind::Fpga, ResourceVector::new(100, 32, 2500, 2), 180, 22);
    let dsp_filter =
        Implementation::new(ElementKind::Dsp, ResourceVector::new(650, 24, 0, 0), 140, 9);
    let arm_decoder =
        Implementation::new(ElementKind::Arm, ResourceVector::new(350, 256, 0, 1), 300, 14);
    let dsp_decoder =
        Implementation::new(ElementKind::Dsp, ResourceVector::new(820, 40, 0, 0), 220, 18);

    let mut radio = ApplicationBuilder::new("fm-radio");
    let adc = radio.add_task("adc", TaskRole::Input, vec![fpga_frontend]);
    let chan = radio.add_task("channelize", TaskRole::Internal, vec![dsp_filter]);
    let demod = radio.add_task("demodulate", TaskRole::Internal, vec![dsp_filter]);
    // The decoder ships two implementations; binding picks the cheaper
    // feasible one ("multiple implementations may be provided by different
    // IP manufacturers").
    let dec = radio.add_task("decode", TaskRole::Output, vec![arm_decoder, dsp_decoder]);
    radio.add_channel(adc, chan, 180, 1);
    radio.add_channel(chan, demod, 120, 1);
    radio.add_channel(demod, dec, 90, 1);
    radio.add_constraint(Constraint::Throughput { max_period_cycles: 5_000 });
    let radio = radio.build()?;
    println!("application: {radio}");

    // 3. The resource manager: binding -> mapping -> routing -> validation,
    //    tens of microseconds on a modern host (tens of milliseconds on the
    //    paper's 200 MHz ARM).
    let mut kairos = Kairos::new(platform, KairosConfig::with_policy(CostPolicy::Both));
    let report = kairos.admit(&radio)?;

    println!("\nadmitted as {}:", report.app_id);
    println!("  timings: {}", report.timings);
    println!("  layout:  {}", report.layout);
    for (task, element) in report.layout.placement.iter() {
        println!(
            "    {:<12} -> {}",
            radio.task(task).name(),
            kairos.platform().element(element).name()
        );
    }
    for route in &report.layout.routes {
        let channel = radio.channel(route.channel());
        println!(
            "    {} -> {}: {} hops",
            radio.task(channel.src()).name(),
            radio.task(channel.dst()).name(),
            route.hops()
        );
    }
    if let Some(validation) = &report.validation {
        println!(
            "  steady-state period {:.0} cycles (constraint: <= 5000)",
            validation.iteration_period
        );
    }
    println!("  platform fragmentation: {:.1}%", 100.0 * kairos.fragmentation());

    // 4. Release returns every claimed resource.
    kairos.release(report.app_id);
    assert!(kairos.platform().is_idle());
    println!("\nreleased; platform idle again");
    Ok(())
}
