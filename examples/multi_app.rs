//! Run-time dynamics: applications arriving and leaving an MPSoC.
//!
//! Demonstrates what *run-time* (versus design-time) resource management
//! buys: the platform admits an unpredictable stream of applications,
//! rejects what no longer fits, and reclaims resources when applications
//! terminate — no precomputed schedule could cover these combinations.
//!
//! ```sh
//! cargo run --release --example multi_app
//! ```

use kairos::appgen::{AppGenerator, GeneratorConfig};
use kairos::core::{Kairos, KairosConfig};
use kairos::platform::topology;

fn main() {
    let mut kairos = Kairos::new(topology::crisp(), KairosConfig::default());
    let mut generator = AppGenerator::new(
        GeneratorConfig { internal_tasks: 3..=8, ..GeneratorConfig::default() },
        0xD1CE,
    );

    println!("phase 1: admission until saturation");
    let mut admitted = Vec::new();
    let mut rejected_at = None;
    for i in 0..40 {
        let app = generator.generate(format!("app{i}"));
        match kairos.admit(&app) {
            Ok(report) => {
                println!(
                    "  + {} ({} tasks) -> {} [frag {:>5.1}%]",
                    app.name(),
                    app.task_count(),
                    report.app_id,
                    100.0 * kairos.fragmentation()
                );
                admitted.push(report.app_id);
            }
            Err(failure) => {
                println!(
                    "  x {} rejected in {} phase after {} admissions",
                    app.name(),
                    failure.phase(),
                    admitted.len()
                );
                rejected_at = Some(i);
                break;
            }
        }
    }

    println!("\noccupancy strip (o/8/# = 1/2-3/4+ tasks, . = idle):");
    println!("  {}", kairos::platform::render_strip(kairos.platform()));

    println!("\nphase 2: half the applications terminate");
    let to_release: Vec<_> = admitted.iter().copied().step_by(2).collect();
    for id in &to_release {
        kairos.release(*id);
    }
    println!(
        "  released {} applications; fragmentation now {:.1}%",
        to_release.len(),
        100.0 * kairos.fragmentation()
    );
    println!("  {}", kairos::platform::render_strip(kairos.platform()));

    println!("\nphase 3: the freed resources admit new work");
    let mut readmitted = 0;
    for i in 0..10 {
        let app = generator.generate(format!("late{i}"));
        match kairos.admit(&app) {
            Ok(report) => {
                readmitted += 1;
                println!("  + {} -> {}", app.name(), report.app_id);
            }
            Err(failure) => {
                println!("  x {} rejected ({} phase)", app.name(), failure.phase());
            }
        }
    }
    println!(
        "\nsummary: {} initial admissions (first rejection at request {:?}), \
         {} late admissions after partial release, {} apps resident",
        admitted.len(),
        rejected_at,
        readmitted,
        kairos.admitted_count()
    );
}
