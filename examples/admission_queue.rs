//! Drives the `kairos-admitd` priority admission front-end by hand:
//! saturates the CRISP platform with low-priority work, queues a mix of
//! priorities against the full platform, then releases capacity and
//! watches the queue drain highest-priority-first with bounded retry.
//!
//! ```text
//! cargo run --release --example admission_queue
//! ```
//!
//! Everything is deterministic — rerunning prints the identical trace.

use kairos::admitd::{AdmitPolicy, Admitd, PriorityClass, QueueEvent};
use kairos::appgen::{AppGenerator, DatasetSpec};
use kairos::core::{Kairos, KairosConfig};
use kairos::platform::topology;

fn describe(events: &[QueueEvent]) {
    for event in events {
        match event {
            QueueEvent::Enqueued { ticket, class, depth } => {
                println!("  ~ {ticket} [{class}] queued (depth {depth})");
            }
            QueueEvent::Admitted { ticket, class, report, waited, attempts, .. } => {
                println!(
                    "  + {ticket} [{class}] admitted as {} after {waited} ticks, {attempts} attempt(s)",
                    report.app_id
                );
            }
            QueueEvent::AttemptFailed { ticket, class, attempt, phase } => {
                println!("  ! {ticket} [{class}] attempt {attempt} failed in {phase}, backing off");
            }
            QueueEvent::Rejected { ticket, class, reason, waited } => {
                println!("  - {ticket} [{class}] rejected after {waited} ticks: {reason:?}");
            }
            QueueEvent::Preempted { victim, class, ticket, by } => {
                println!("  < {victim} [{class}] preempted for {by}, requeued as {ticket}");
            }
            QueueEvent::Migrated { app, class, moved_tasks, by } => {
                println!("  > {app} [{class}] migrated ({moved_tasks} tasks moved) for {by}");
            }
        }
    }
}

fn main() {
    let policy = AdmitPolicy {
        class_capacity: [4, 4, 8, 8],
        max_wait: Some(400),
        max_attempts: 6,
        backoff_base: 1,
        backoff_cap: 4,
        ..AdmitPolicy::default()
    };
    println!("policy: {policy:?}\n");
    let mut admitd = Admitd::new(Kairos::new(topology::crisp(), KairosConfig::default()), policy);

    // Phase 1: low-priority batch work until the platform refuses more.
    println!("== filling the platform with low-priority batch work ==");
    let spec = DatasetSpec::all()[3]; // Computation Medium
    let mut generator = AppGenerator::new(spec.generator_config(), 0xFEED);
    let mut residents = Vec::new();
    let mut clock = 0u64;
    loop {
        clock += 5;
        let app = generator.generate(format!("batch-{clock}"));
        let (_, events) = admitd.submit(app, PriorityClass::Low, clock);
        let admitted = events.iter().any(|e| matches!(e, QueueEvent::Admitted { .. }));
        describe(&events);
        for e in &events {
            if let QueueEvent::Admitted { report, .. } = e {
                residents.push(report.app_id);
            }
        }
        if !admitted {
            break; // first waiter is parked: the platform is full
        }
    }
    println!(
        "platform full: {} residents, utilisation {:.2}, queue depth {}\n",
        admitd.kairos().admitted_count(),
        admitd.occupancy().element_utilisation,
        admitd.queue_depth()
    );

    // Phase 2: a burst of mixed-priority requests against the full platform.
    println!("== mixed-priority burst against the full platform ==");
    for (i, class) in [
        PriorityClass::Normal,
        PriorityClass::Critical,
        PriorityClass::Normal,
        PriorityClass::High,
        PriorityClass::Critical,
    ]
    .into_iter()
    .enumerate()
    {
        clock += 5;
        let app = generator.generate(format!("burst-{i}"));
        let (_, events) = admitd.submit(app, class, clock);
        describe(&events);
    }
    println!("queue depths by class (critical/high/normal/low): {:?}\n", admitd.queue().depths());

    // Phase 3: departures free capacity; each one drains the queue in
    // priority order, so criticals are admitted first even though they
    // arrived last.
    println!("== releasing residents: capacity events drain by priority ==");
    for id in residents.into_iter().take(6) {
        clock += 10;
        println!("t={clock}: release {id}");
        let (_, events) = admitd.release(id, clock);
        describe(&events);
        if admitd.queue().is_empty() {
            break;
        }
    }

    // Anything still queued at the end of the day times out or is flushed.
    clock += 500;
    println!("\n== end of run (t={clock}) ==");
    let events = admitd.expire(clock);
    describe(&events);
    let events = admitd.shutdown(clock);
    describe(&events);
    println!(
        "final: {} admitted, queue empty: {}",
        admitd.kairos().admitted_count(),
        admitd.queue().is_empty()
    );
}
