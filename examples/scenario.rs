//! Runs a named catalog scenario through the discrete-event engine and
//! prints its JSON report.
//!
//! ```text
//! cargo run --release --example scenario [NAME]
//! cargo run --release --example scenario -- --list
//! cargo run --release --example scenario -- NAME --trace out.json
//! cargo run --release --example scenario -- NAME --status
//! ```
//!
//! Defaults to `steady-churn`. Reports are byte-identical across reruns of
//! the same scenario — pipe to a file and diff to convince yourself. With
//! `--trace PATH` the exported Chrome-trace JSON (load via
//! `chrome://tracing` or Perfetto) is written to PATH after the run; the
//! file is byte-identical across reruns too. The export is empty (`[]`)
//! unless the scenario enables tracing. With `--status` the JSON report
//! is replaced by the `kairos-watch` status snapshot — a `kairos-top`
//! style dump of the run's final state (shards, traffic, cache, energy,
//! alerts); deterministic too, since it is a pure rendering of the
//! report.

use kairos::sim::{Scenario, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut status = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--status" => status = true,
            "--list" => {
                for scenario in Scenario::catalog() {
                    println!(
                        "{:<24} {} phases, horizon {}",
                        scenario.name,
                        scenario.phases.len(),
                        scenario.horizon()
                    );
                }
                return;
            }
            "--trace" => match iter.next() {
                Some(path) => trace_path = Some(path),
                None => {
                    eprintln!("--trace requires an output path");
                    std::process::exit(2);
                }
            },
            _ => name = Some(arg),
        }
    }
    let name = name.unwrap_or_else(|| "steady-churn".to_owned());
    let Some(scenario) = Scenario::by_name(&name) else {
        eprintln!("unknown scenario '{name}'; try --list");
        std::process::exit(2);
    };
    let mut simulator = Simulator::new(scenario).expect("catalog scenarios are valid");
    let report = simulator.run();
    if let Some(path) = trace_path {
        std::fs::write(&path, simulator.telemetry().chrome_trace())
            .unwrap_or_else(|err| panic!("writing trace to {path}: {err}"));
    }
    if status {
        print!("{}", report.status(simulator.service().shard_count()).render());
    } else {
        print!("{}", report.to_json_string());
    }
}
