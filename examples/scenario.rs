//! Runs a named catalog scenario through the discrete-event engine and
//! prints its JSON report.
//!
//! ```text
//! cargo run --release --example scenario [NAME]
//! cargo run --release --example scenario -- --list
//! ```
//!
//! Defaults to `steady-churn`. Reports are byte-identical across reruns of
//! the same scenario — pipe to a file and diff to convince yourself.

use kairos::sim::{Scenario, Simulator};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "steady-churn".to_owned());
    if arg == "--list" {
        for scenario in Scenario::catalog() {
            println!(
                "{:<20} {} phases, horizon {}",
                scenario.name,
                scenario.phases.len(),
                scenario.horizon()
            );
        }
        return;
    }
    let Some(scenario) = Scenario::by_name(&arg) else {
        eprintln!("unknown scenario '{arg}'; try --list");
        std::process::exit(2);
    };
    let mut simulator = Simulator::new(scenario).expect("catalog scenarios are valid");
    let report = simulator.run();
    print!("{}", report.to_json_string());
}
