//! Fault tolerance through run-time re-mapping.
//!
//! The paper motivates run-time resource management with the need "to
//! provide some degree of fault tolerance, due to imperfect production
//! processes and wear of materials". This example injects element failures
//! and re-admits the evicted applications on the remaining healthy
//! elements — something a design-time mapping cannot do.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use kairos::appgen::{AppGenerator, GeneratorConfig};
use kairos::core::{Kairos, KairosConfig};
use kairos::platform::{topology, ElementKind};

fn main() {
    let mut kairos = Kairos::new(topology::crisp(), KairosConfig::default());
    let mut generator = AppGenerator::new(
        GeneratorConfig { internal_tasks: 3..=6, ..GeneratorConfig::default() },
        0xFA17,
    );

    // Admit a handful of applications and remember their layouts.
    let apps: Vec<_> = (0..6).map(|i| generator.generate(format!("app{i}"))).collect();
    let mut resident = Vec::new();
    for app in &apps {
        if let Ok(report) = kairos.admit(app) {
            resident.push((app, report));
        }
    }
    println!("{} applications resident before the fault", resident.len());

    // Fail the busiest DSP.
    let busiest = kairos
        .platform()
        .element_ids()
        .filter(|&e| kairos.platform().element(e).kind() == ElementKind::Dsp)
        .max_by_key(|&e| kairos.platform().residents(e).len())
        .expect("CRISP has DSPs");
    let occupants = kairos.platform().residents(busiest).len();
    println!(
        "\ninjecting failure into {} ({} resident tasks)",
        kairos.platform().element(busiest).name(),
        occupants
    );
    let evicted = kairos.fail_element(busiest);
    println!("evicted applications: {evicted:?}");

    // Re-admit the victims: the mapper must route around the dead element.
    let mut recovered = 0;
    for (app, old_report) in &resident {
        if !evicted.contains(&old_report.app_id) {
            continue;
        }
        match kairos.admit(app) {
            Ok(new_report) => {
                recovered += 1;
                let moved = new_report
                    .layout
                    .placement
                    .iter()
                    .zip(old_report.layout.placement.iter())
                    .filter(|((_, new), (_, old))| new != old)
                    .count();
                println!(
                    "  {} re-admitted as {} ({} of {} tasks moved)",
                    app.name(),
                    new_report.app_id,
                    moved,
                    app.task_count()
                );
                // The failed element must not be used.
                assert!(new_report.layout.placement.iter().all(|(_, e)| e != busiest));
            }
            Err(failure) => {
                println!("  {} could not be recovered ({})", app.name(), failure.phase());
            }
        }
    }
    println!(
        "\nrecovered {recovered}/{} evicted applications without {}",
        evicted.len(),
        kairos.platform().element(busiest).name()
    );

    // Repair and show the element becomes usable again.
    kairos.repair_element(busiest);
    println!("element repaired; failure set now {:?}", kairos.platform().failed_elements());
}
