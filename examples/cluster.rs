//! Guided tour of the `kairos-cluster` sharded deployment: partition a
//! platform into region shards, admit an arrival wave through parallel
//! what-if probes, then force a cross-shard rebalance.
//!
//! ```text
//! cargo run --release --example cluster
//! ```
//!
//! Output is deterministic (zero phase clock, fixed workload seed, probe
//! results merged in shard-id order) — run it twice and diff.

use kairos::admitd::PriorityClass;
use kairos::appgen::{WorkloadMix, WorkloadSampler};
use kairos::cluster::{ClusterBuilder, ClusterService, FirstFit};
use kairos::platform::topology;
use kairos::svc::{Command, Event, Request, ResourceService};

fn shard_population(cluster: &ClusterService) -> String {
    (0..cluster.shard_count())
        .map(|s| format!("shard{s}: {} apps", cluster.shard(s).kairos().admitted_count()))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    // 1. Partition: three contiguous, capacity-balanced region shards
    // over the CRISP platform, each owned by its own Kairos manager.
    // First-fit placement deliberately concentrates load on the lowest
    // shards, so the rebalance sweep below has work to do.
    let mut cluster = ClusterBuilder::new(topology::crisp(), 3)
        .deterministic(true)
        .placement(Box::new(FirstFit))
        .build()
        .expect("three shards fit CRISP");
    println!("-- partition: {} shards over 62 elements --", cluster.shard_count());
    for s in 0..cluster.shard_count() {
        let p = cluster.shard(s).kairos().platform();
        println!(
            "   shard{s}: {} elements, {} links ({})",
            p.element_count(),
            p.link_count(),
            p.name()
        );
    }
    println!(
        "   {} directed links cross shard boundaries and are surrendered",
        cluster.regions().cross_region_links(&topology::crisp())
    );

    // 2. Admission wave: every arrival fans out as parallel what-if
    // probes across all shards; the policy picks the winner from results
    // merged in shard-id order.
    println!("-- a wave of 9 arrivals, placed by parallel probes ({}) --", cluster.policy_name());
    let mut sampler = WorkloadSampler::new("cluster-demo", WorkloadMix::all_datasets(), 42);
    for i in 0..9 {
        let app = sampler.next_app();
        cluster.submit(Request::admit(i, app, PriorityClass::Normal));
        for event in cluster.take_events() {
            match event {
                Event::Admitted { ticket, report, .. } => println!(
                    "   {ticket} admitted as {} on shard{}",
                    report.app_id,
                    cluster.shard_of_app(report.app_id)
                ),
                Event::Rejected { ticket, cause, .. } => {
                    println!("   {ticket} rejected: {cause:?}");
                }
                other => println!("   {other:?}"),
            }
        }
    }
    println!("   population: {}", shard_population(&cluster));

    // 3. Skew the cluster: a maintenance window empties every shard but
    // shard 0, leaving all the load piled on one region.
    println!("-- shards 1..n drain; the load is now skewed --");
    for s in 1..cluster.shard_count() {
        for id in cluster.shard(s).kairos().admitted_ids() {
            cluster.submit(Request::release(15, id));
        }
    }
    cluster.take_events();
    println!("   population: {}", shard_population(&cluster));

    // 4. Cross-shard rebalance: move work from the most- to the
    // least-loaded shard by two-phase evict-and-readmit. The moved
    // applications keep running — under fresh ids minted by their new
    // shard.
    println!("-- a rebalance sweep spreads the pile-up back out --");
    cluster.submit(Request::new(20, Command::Rebalance { max_moves: 4 }));
    for event in cluster.take_events() {
        if let Event::Rebalanced { moves, .. } = event {
            for (from, to) in &moves {
                println!(
                    "   {from} (shard{}) moved across the boundary, now {to} (shard{})",
                    cluster.shard_of_app(*from),
                    cluster.shard_of_app(*to)
                );
            }
            if moves.is_empty() {
                println!("   already balanced: no moves");
            }
        }
    }
    println!("   population: {}", shard_population(&cluster));
    let loads = cluster.loads();
    for load in &loads {
        println!(
            "   shard{}: {:.1}% of resources claimed",
            load.shard,
            load.resource_utilisation * 100.0
        );
    }

    // 5. Teardown: releases route home by app id; every shard drains to
    // idle, proving the ledgers balanced across all the moves.
    println!("-- teardown --");
    for s in 0..cluster.shard_count() {
        for id in cluster.shard(s).kairos().admitted_ids() {
            cluster.submit(Request::release(30, id));
        }
    }
    cluster.take_events();
    let all_idle =
        (0..cluster.shard_count()).all(|s| cluster.shard(s).kairos().platform().is_idle());
    println!("final: {} admitted, every shard idle: {all_idle}", cluster.occupancy().admitted_apps);
}
