//! Guided tour of the `kairos-telemetry` observability layer: run the
//! sharded `telemetry-probe-latency` storm with metrics on, read the
//! embedded snapshot, render the Prometheus text exposition, trigger a
//! transaction rollback, and dump the flight recorder.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```
//!
//! Output is deterministic (zero telemetry clock, seeded scenario) — run
//! it twice and diff. See `docs/OBSERVABILITY.md` for the full metric
//! catalogue and the determinism rules this example demonstrates.

use kairos::admitd::PriorityClass;
use kairos::appgen::{AppGenerator, GeneratorConfig};
use kairos::cluster::{ClusterBuilder, LeastLoaded};
use kairos::platform::topology;
use kairos::sim::{Scenario, Simulator};
use kairos::svc::{Event, Request, ResourceService};
use kairos::telemetry::{MetricValue, Snapshot, Telemetry, TelemetryConfig};

fn counter(snapshot: &Snapshot, name: &str) -> u64 {
    match snapshot.metrics.iter().find(|m| m.name == name).map(|m| &m.value) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    }
}

fn main() {
    // 1. A sharded storm with telemetry on: the catalog scenario runs a
    // low-priority fill, a critical surge that preempts via migration,
    // and a drain — over three region shards — while every layer records
    // into one shared registry. The scenario enables telemetry itself.
    let scenario = Scenario::by_name("telemetry-probe-latency").expect("catalog entry");
    println!("-- sharded storm: `{}` with telemetry enabled --", scenario.name);
    let mut simulator = Simulator::new(scenario).expect("valid scenario");
    let report = simulator.run();
    let snapshot = report.telemetry.as_ref().expect("telemetry-enabled report");
    println!("   {} metrics registered across the stack", snapshot.metrics.len());
    for name in [
        "kairos.sim.total.arrivals",
        "kairos.admitd.enqueued",
        "kairos.cluster.probe.waves",
        "kairos.cluster.probes",
        "kairos.core.txn.begin",
        "kairos.core.txn.commit",
        "kairos.core.txn.rollback",
        "kairos.core.migrate.attempts",
        "kairos.core.migrate.commits",
    ] {
        println!("   {name} = {}", counter(snapshot, name));
    }

    // 2. Per-shard probe latency: each admission fans out as one what-if
    // probe per shard, timed into that shard's histogram. Under the
    // deterministic zero clock every duration is 0 ns, so the counts are
    // the signal — and they are byte-reproducible run to run.
    println!("-- probe fan-out, per shard --");
    for metric in &snapshot.metrics {
        if let MetricValue::Histogram(h) = &metric.value {
            if metric.name.contains("probe.ns") {
                println!("   {}: {} probes timed", metric.name, h.count);
            }
        }
    }

    // 3. The same snapshot renders in the Prometheus text exposition
    // format (names sanitised, `_bucket`/`_sum`/`_count` series per
    // histogram). Print the counter lines only; the full text is what a
    // scrape endpoint would serve.
    println!("-- text exposition (counters only) --");
    for line in simulator.telemetry().render_text().lines() {
        if line.starts_with("kairos_sim_total_") && !line.ends_with(" 0") {
            println!("   {line}");
        }
    }

    // 4. Rollback, observed: a fresh two-shard cluster with its own hub
    // admits one app, then probes one far too large to place. Probes and
    // the failed admission are transactions that roll back on every
    // shard they touch — visible as txn.rollback ticks on the registry.
    println!("-- a hopeless admission rolls back under observation --");
    let telemetry = Telemetry::new(TelemetryConfig::default());
    let mut cluster = ClusterBuilder::new(topology::crisp(), 2)
        .deterministic(true)
        .placement(Box::new(LeastLoaded))
        .telemetry(telemetry.clone())
        .build()
        .expect("two shards fit CRISP");
    let mut generator = AppGenerator::new(GeneratorConfig::default(), 7);
    let ok = generator.generate("fits");
    cluster.submit(Request::admit(0, ok, PriorityClass::Normal));
    let config = GeneratorConfig { internal_tasks: 160..=160, ..GeneratorConfig::default() };
    let mut generator = AppGenerator::new(config, 8);
    let hopeless = generator.generate("hopeless");
    cluster.submit(Request::admit(1, hopeless, PriorityClass::Normal));
    for event in cluster.take_events() {
        match event {
            Event::Admitted { ticket, report, .. } => {
                println!("   {ticket} admitted as {}", report.app_id);
            }
            Event::Rejected { ticket, cause, .. } => println!("   {ticket} rejected: {cause:?}"),
            other => println!("   {other:?}"),
        }
    }
    let after = telemetry.snapshot();
    println!(
        "   txn.begin = {}, txn.commit = {}, txn.rollback = {}",
        counter(&after, "kairos.core.txn.begin"),
        counter(&after, "kairos.core.txn.commit"),
        counter(&after, "kairos.core.txn.rollback"),
    );

    // 5. The flight recorder: a bounded ring of the most recent trace
    // events (span enter/exit, lifecycle events), kept cheap enough to
    // leave on and dumped only when something needs explaining — here,
    // the per-shard probe spans behind the verdicts above.
    println!("-- flight-recorder dump (most recent events) --");
    let flight = telemetry.flight_dump();
    for event in flight.iter().rev().take(6).rev() {
        println!("   {event}");
    }
    println!("final: {} events retained, every byte of this output reproducible", flight.len());
}
