//! The paper's §IV-A case study: allocating the 53-task beamforming
//! application that needs all 45 DSPs of the CRISP platform, and exploring
//! how the cost-function weights decide admission (Fig. 10).
//!
//! ```sh
//! cargo run --release --example beamforming
//! ```

use kairos::appgen::beamforming::beamforming_app;
use kairos::core::{CostWeights, Kairos, KairosConfig, Phase};
use kairos::platform::topology;

fn main() {
    let app = beamforming_app();
    println!("case study: {app}");

    // Admission with balanced weights (the paper: "only specific ratio
    // between the fragmentation and communication objective results in
    // admission").
    let mut kairos = Kairos::new(
        topology::crisp(),
        KairosConfig {
            weights: CostWeights { communication: 5.0, fragmentation: 10.0 },
            extra_search_rings: 5,
            ..KairosConfig::default()
        },
    );
    match kairos.admit(&app) {
        Ok(report) => {
            println!("\nadmitted with balanced weights:");
            println!("  per-phase: {}", report.timings);
            println!("  layout: {}", report.layout);
            println!(
                "  paper reference on 200 MHz ARM926: binding 70.4 ms, mapping 21.7 ms, \
                 routing 7.4 ms, validation 20.6 ms"
            );
            if let Some(v) = &report.validation {
                println!("  steady-state period: {:.0} cycles", v.iteration_period);
            }
            // Count how many DSPs ended up in use (all 45, per the paper).
            let dsp_elements = report
                .layout
                .placement
                .iter()
                .filter(|&(_, e)| {
                    kairos.platform().element(e).kind() == kairos::platform::ElementKind::Dsp
                })
                .map(|(_, e)| e)
                .collect::<std::collections::HashSet<_>>();
            println!("  DSPs occupied: {} of 45", dsp_elements.len());
        }
        Err(failure) => {
            println!("rejected in the {} phase: {failure}", failure.phase());
        }
    }

    // Weight exploration: a coarse slice of Fig. 10.
    println!("\nweight exploration (y = admitted, . = rejected):");
    println!("  frag\\comm   0    1    5   10   25");
    for fw in [0.0, 10.0, 100.0, 500.0, 1000.0] {
        let mut row = format!("  {fw:9} ");
        for cw in [0.0, 1.0, 5.0, 10.0, 25.0] {
            let config = KairosConfig {
                weights: CostWeights { communication: cw, fragmentation: fw },
                extra_search_rings: 5,
                validate: false,
                ..KairosConfig::default()
            };
            let mut probe = Kairos::new(topology::crisp(), config);
            let mark = match probe.admit(&app) {
                Ok(_) => "   y ",
                Err(f) if f.phase() == Phase::Routing => "   . ",
                Err(_) => "   . ",
            };
            row.push_str(mark);
        }
        println!("{row}");
    }
    println!("\nno cost function (0,0) and fragmentation-only (comm=0) never admit;");
    println!("the mapping objectives must be combined to place 53 tasks on 45 DSPs.");
}
