//! Drives the unified `kairos-svc` service API through a small session:
//! a batched arrival wave, a preempting critical, a fault, and releases —
//! all through typed commands, observed on the single event stream.
//!
//! ```text
//! cargo run --release --example service
//! ```
//!
//! Output is deterministic (the service runs on the zero phase clock and
//! a fixed workload seed) — run it twice and diff.

use kairos::appgen::{WorkloadMix, WorkloadSampler};
use kairos::platform::topology;
use kairos::svc::{
    CapacityEvent, Command, Event, PreemptionPolicy, PriorityClass, Request, ResourceService,
    ServiceBuilder, VictimOrder,
};

fn show(events: &[Event]) {
    for event in events {
        match event {
            Event::Queued { ticket, class, depth } => {
                println!("  {ticket} queued as {class} (depth {depth})");
            }
            Event::Admitted { ticket, class, report, waited, .. } => {
                println!(
                    "  {ticket} admitted as {} ({class}, waited {waited}, {} tasks)",
                    report.app_id,
                    report.layout.placement.len()
                );
            }
            Event::AttemptFailed { ticket, attempt, phase, .. } => {
                println!("  {ticket} attempt {attempt} refused by {phase}, backing off");
            }
            Event::Rejected { ticket, cause, .. } => {
                println!("  {ticket} rejected: {cause:?}");
            }
            Event::Preempted { victim, requeued_as, by, .. } => {
                println!("  {victim} preempted for {by}, requeued as {requeued_as}");
            }
            Event::Migrated { ticket, app, moved_tasks } => {
                println!("  {app} live-migrated for {ticket} ({moved_tasks} tasks moved)");
            }
            Event::MigrationFailed { ticket, app, .. } => {
                println!("  {app} could not be migrated for {ticket}");
            }
            Event::Released { ticket, app, found } => {
                println!("  {ticket} released {app} (found: {found})");
            }
            Event::ElementFailed { ticket, element, evicted } => {
                println!("  {ticket} failed element {element}, evicting {evicted:?}");
            }
            Event::ElementRepaired { ticket, element } => {
                println!("  {ticket} repaired element {element}");
            }
            Event::Defragged { ticket, moves } => {
                println!("  {ticket} defrag sweep moved {moves} app(s)");
            }
            Event::Rebalanced { ticket, moves } => {
                println!("  {ticket} rebalance sweep moved {} app(s) across shards", moves.len());
            }
        }
    }
}

fn main() {
    // One typed service over core + admitd + reloc: policies are injected
    // at construction, behaviour is deterministic thereafter.
    let mut service = ServiceBuilder::new(topology::crisp())
        .deterministic(true)
        .preemption(PreemptionPolicy::Migrate)
        .victim_order(VictimOrder::SmallestFirst)
        .build()
        .expect("default policies are valid");
    let mut sampler = WorkloadSampler::new("service-demo", WorkloadMix::all_datasets(), 42);

    println!("-- a synchronized arrival wave, admitted as one batch --");
    let wave: Vec<Request> =
        (0..8).map(|_| Request::admit(0, sampler.next_app(), PriorityClass::Low)).collect();
    let tickets = service.submit_batch(wave);
    show(&service.take_events());
    println!(
        "   wave of {} cost {} platform transaction(s)",
        tickets.len(),
        service.kairos().platform().txn_count()
    );

    println!("-- a critical arrival may relocate lower-priority work --");
    service.submit(Request::admit(10, sampler.next_app(), PriorityClass::Critical));
    show(&service.take_events());

    println!("-- a fault evicts; the survivors keep running --");
    let element = kairos::platform::ElementId(28);
    service.submit(Request::new(20, Command::InjectFault { element }));
    show(&service.take_events());
    service.submit(Request::new(25, Command::Repair { element }));
    show(&service.take_events());

    println!("-- a defrag sweep compacts the remains --");
    service.submit(Request::new(30, Command::Defrag { max_moves: 4 }));
    show(&service.take_events());

    println!("-- shutdown: every request reaches a terminal outcome --");
    // Releases are capacity events, so the drain may admit waiters while
    // we tear down — keep releasing until the platform is empty.
    while let Some(id) = service.kairos().admitted_ids().first().copied() {
        service.submit(Request::release(40, id));
        show(&service.take_events());
    }
    show(&service.pump(CapacityEvent::Shutdown { now: 50 }));
    println!(
        "final: {} admitted, platform idle: {}",
        service.kairos().admitted_count(),
        service.kairos().platform().is_idle()
    );
}
